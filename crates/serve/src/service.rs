//! The long-lived forecast service: worker pool, coalescing, SLO triage,
//! and the supervision layer (panic isolation, hung-anneal watchdog,
//! graduated brownout admission).

use dsgl_core::guard::{infer_batch_guarded_seeded_warm_traced, RetryPolicy};
use dsgl_core::tracing::{chrome_trace_json, prometheus_text};
use dsgl_core::{
    CancelToken, CoreError, DsGlModel, FlightDump, FlightRecorder, GuardedAnneal, HealthReport,
    MetricsSnapshot, SpanCollector, SpanRecord, TelemetrySink, TraceScope,
};
use dsgl_data::Sample;
use dsgl_ising::Workspace;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::queue::{BoundedQueue, PushError};
use crate::{flight_events, instruments};
use crate::supervisor::{self, HealthInputs, WorkerSlot, TIER_BROWNOUT, TIER_NORMAL, TIER_SHED};
use crate::ServeConfig;

/// Errors surfaced by the serving layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// Admission refused the request — the queue was full, or brownout
    /// tiering shed it. Nothing was enqueued; back off for about
    /// `retry_after` and resubmit.
    Overloaded {
        /// The configured queue capacity.
        capacity: usize,
        /// Backlog depth observed at rejection time.
        depth: usize,
        /// Suggested client backoff before retrying, estimated from the
        /// backlog and a moving average of batch service time.
        retry_after: Duration,
    },
    /// The submitted history window has the wrong length for the
    /// service's model layout.
    ShapeMismatch {
        /// `W·N·F` history values the model expects.
        expected: usize,
        /// What the request supplied.
        actual: usize,
    },
    /// The service is shutting down and no longer admits requests.
    ShuttingDown,
    /// The worker serving this request disappeared without replying
    /// (it panicked or the service was torn down mid-flight).
    WorkerLost,
    /// The request was orphaned by worker panics more times than the
    /// configured [`crash_retries`](ServeConfig::crash_retries) budget;
    /// the service gave up re-delivering it.
    WorkerCrashed {
        /// Re-deliveries consumed before giving up.
        retries: u32,
    },
    /// A configuration knob the service cannot run with.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// The batched inference call itself failed; every request in the
    /// batch receives the same underlying error.
    Inference(CoreError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded {
                capacity,
                depth,
                retry_after,
            } => {
                write!(
                    f,
                    "admission refused ({depth}/{capacity} queued, retry after {retry_after:?})"
                )
            }
            ServeError::ShapeMismatch { expected, actual } => {
                write!(f, "history window has length {actual}, expected {expected}")
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::WorkerLost => write!(f, "worker exited without replying"),
            ServeError::WorkerCrashed { retries } => {
                write!(f, "workers crashed on this request {} times", retries + 1)
            }
            ServeError::InvalidConfig { reason } => write!(f, "invalid serve config: {reason}"),
            ServeError::Inference(e) => write!(f, "batched inference failed: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Inference(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Inference(e)
    }
}

/// One answered forecast request.
#[derive(Debug, Clone, PartialEq)]
pub struct ForecastResponse {
    /// The predicted target block (always finite).
    pub prediction: Vec<f64>,
    /// What the guarded anneal (or the SLO fallback) did to produce it.
    pub health: HealthReport,
    /// Whether this response is the sanitised persistence fallback
    /// served because the request sat queued past its SLO deadline.
    pub slo_degraded: bool,
    /// How many requests shared the batch this one was served in.
    pub batch_width: usize,
    /// Wall-clock admission-to-reply latency in nanoseconds.
    /// Observability metadata only — never part of the determinism
    /// contract.
    pub latency_ns: u64,
}

/// A pending reply handle returned by
/// [`ForecastService::submit`]; redeem it with [`wait`](Ticket::wait).
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<ForecastResponse, ServeError>>,
}

impl Ticket {
    /// Blocks until the service answers this request.
    ///
    /// # Errors
    ///
    /// Whatever the worker reported, or [`ServeError::WorkerLost`] if it
    /// died without replying.
    pub fn wait(self) -> Result<ForecastResponse, ServeError> {
        self.rx.recv().map_err(|_| ServeError::WorkerLost)?
    }
}

struct Request {
    window: Vec<f64>,
    seed: u64,
    admitted: Instant,
    /// Crash/cancel re-deliveries consumed so far.
    retries: u32,
    /// This request's trace id, doubling as its reserved root
    /// `serve.request` span id (0 when the service traces nowhere).
    trace_id: u64,
    /// FNV-1a of `(seed, window bits)` for brownout coalesce-admission
    /// bookkeeping. A collision can only mis-admit or mis-shed — the
    /// exact-bits coalescing key in `serve_group` is what decides who
    /// shares an anneal, so bits are never at risk.
    key: u64,
    reply: mpsc::Sender<Result<ForecastResponse, ServeError>>,
}

fn fnv_word(mut hash: u64, word: u64) -> u64 {
    for byte in word.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn request_key(seed: u64, window: &[f64]) -> u64 {
    let mut hash = fnv_word(0xcbf2_9ce4_8422_2325, seed);
    for v in window {
        hash = fnv_word(hash, v.to_bits());
    }
    hash
}

struct Shared {
    model: DsGlModel,
    guard: GuardedAnneal,
    sink: TelemetrySink,
    queue: BoundedQueue<Request>,
    config: ServeConfig,
    /// Set once by shutdown: workers stop respawning/requeueing, the
    /// supervisor stops escalating.
    stopping: AtomicBool,
    /// Set by shutdown after every worker joined: the supervisor's exit
    /// signal (it must outlive the workers — a batch hung at shutdown
    /// still needs its watchdog).
    workers_done: AtomicBool,
    /// Live worker JoinHandles. A panicking worker registers its
    /// replacement here *before* its own thread exits, so shutdown's
    /// drain loop can never miss one.
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// One watchdog slot per worker index; replacements reuse theirs.
    slots: Vec<WorkerSlot>,
    /// Current brownout tier (written by the supervisor, read at
    /// admission and batch planning).
    tier: AtomicU8,
    /// Worker panics observed (brownout score input).
    crashes: AtomicU64,
    /// Guard retries across served windows (brownout score input,
    /// deliberately independent of the possibly-noop telemetry sink).
    guard_retries: AtomicU64,
    /// Windows served (brownout score input).
    guard_runs: AtomicU64,
    /// EWMA of batch wall time in ns (retry-after hint).
    batch_ewma_ns: AtomicU64,
    /// Multiset of FNV keys currently waiting in the queue; maintained
    /// only when brownout is configured (coalesce-only admission needs
    /// to know whether a twin is still queued).
    queued_keys: Option<Mutex<HashMap<u64, u32>>>,
    /// Remaining chaos panic injections.
    panics_armed: AtomicU32,
    /// Remaining chaos hang injections.
    hangs_armed: AtomicU32,
    /// Span collector: noop unless the service was spawned via
    /// [`ForecastService::spawn_traced`], in which case every request
    /// gets a `serve.request` span tree down to the anneal phases.
    spans: SpanCollector,
    /// Always-on black-box recorder of failure-edge events (worker
    /// panics, watchdog fires, brownout edges, SLO fallbacks).
    flight: FlightRecorder,
    /// Flight dump frozen at the moment of the most recent worker
    /// panic, so the evidence survives later ring rotation.
    last_crash_dump: Mutex<Option<FlightDump>>,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stopping.load(Ordering::Acquire)
    }

    fn note_queued_key(&self, key: u64) {
        if let Some(keys) = &self.queued_keys {
            let mut keys = keys.lock().unwrap_or_else(|e| e.into_inner());
            *keys.entry(key).or_insert(0) += 1;
        }
    }

    fn drop_queued_key(&self, key: u64) {
        if let Some(keys) = &self.queued_keys {
            let mut keys = keys.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(count) = keys.get_mut(&key) {
                if *count <= 1 {
                    keys.remove(&key);
                } else {
                    *count -= 1;
                }
            }
        }
    }

    fn key_is_queued(&self, key: u64) -> bool {
        match &self.queued_keys {
            Some(keys) => keys
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .contains_key(&key),
            None => false,
        }
    }
}

/// A long-lived pool of trained forecasters behind a bounded queue.
///
/// Workers pull admitted requests in batches of up to
/// [`coalesce`](ServeConfig::coalesce), collapse duplicate
/// `(window, seed)` pairs into a single anneal, and run the rest
/// through the seeded guarded batch kernel with a per-worker pooled
/// [`Workspace`] (the PR 5 take/adopt migration, so steady-state
/// serving allocates nothing per request).
///
/// **Supervision** (PR 8): worker bodies run under `catch_unwind`; a
/// panic quarantines the worker's pooled workspace, re-enqueues its
/// un-replied requests exactly once each (up to
/// [`crash_retries`](ServeConfig::crash_retries), then
/// [`ServeError::WorkerCrashed`]), and respawns a fresh worker. With a
/// [`watchdog`](ServeConfig::watchdog), a supervisor thread cancels
/// anneals stuck past the deadline via a cooperative
/// [`CancelToken`]; cancelled requests are re-enqueued, then served the
/// persistence fallback. With a [`brownout`](ServeConfig::brownout)
/// policy, admission degrades Normal → Brownout (coalesce-only, shorter
/// deadline) → Shed on a health score with hysteresis.
///
/// **Determinism contract** (pinned by `tests/determinism.rs`): a
/// request's forecast is a pure function of the model, window, seed,
/// guard policy, and fault model. Queue order, batch grouping, linger,
/// worker count, duplicate collapsing, panic re-delivery, and admission
/// tiering can never change the bits — each window anneals under an RNG
/// derived only from its own seed, exactly as a serial one-by-one run
/// would, and a token that never fires is bit-invisible.
pub struct ForecastService {
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<()>>,
}

impl ForecastService {
    /// Spawns the worker pool (plus the supervisor heartbeat when a
    /// watchdog or brownout policy is configured) and starts serving.
    ///
    /// The `telemetry` sink receives the `serve.*` instrument family
    /// (plus `guard.*`/`anneal.*` from the kernels underneath); pass
    /// [`TelemetrySink::noop`] to serve unobserved at zero cost —
    /// supervision reads its own atomics, never the sink.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for zero workers/coalesce/capacity,
    /// malformed brownout bands, or hang chaos without a watchdog.
    pub fn spawn(
        model: DsGlModel,
        guard: GuardedAnneal,
        telemetry: TelemetrySink,
        config: ServeConfig,
    ) -> Result<ForecastService, ServeError> {
        Self::spawn_traced(model, guard, telemetry, SpanCollector::noop(), config)
    }

    /// [`spawn`](Self::spawn) with a [`SpanCollector`]: every admitted
    /// request records a `serve.request` span tree — `serve.admission`
    /// and `serve.queue_wait` under the root, a `serve.batch` span per
    /// executed batch, the `anneal.{strict,adaptive,lockstep}` phase and
    /// `guard.retry` spans from the kernels underneath, plus
    /// `serve.coalesce` / `serve.fallback` markers. Read the tree back
    /// with [`trace_spans`](Self::trace_spans) or export it via
    /// [`chrome_trace`](Self::chrome_trace).
    ///
    /// Pass [`SpanCollector::noop`] (what [`spawn`](Self::spawn) does)
    /// to trace nothing: the disabled collector is a single branch on
    /// every path and provably bit-invisible (the determinism suite runs
    /// collector-enabled vs noop and compares bits).
    ///
    /// # Errors
    ///
    /// See [`spawn`](Self::spawn).
    pub fn spawn_traced(
        model: DsGlModel,
        guard: GuardedAnneal,
        telemetry: TelemetrySink,
        spans: SpanCollector,
        config: ServeConfig,
    ) -> Result<ForecastService, ServeError> {
        config.validate()?;
        config
            .faults
            .validate(model.layout().total())
            .map_err(|e| ServeError::InvalidConfig {
                reason: format!("fault model: {e}"),
            })?;
        telemetry.gauge_set(instruments::WORKERS, config.workers as f64);
        let shared = Arc::new(Shared {
            model,
            guard,
            sink: telemetry,
            queue: BoundedQueue::new(config.queue_capacity),
            stopping: AtomicBool::new(false),
            workers_done: AtomicBool::new(false),
            handles: Mutex::new(Vec::with_capacity(config.workers)),
            slots: (0..config.workers).map(|_| WorkerSlot::new()).collect(),
            tier: AtomicU8::new(TIER_NORMAL),
            crashes: AtomicU64::new(0),
            guard_retries: AtomicU64::new(0),
            guard_runs: AtomicU64::new(0),
            batch_ewma_ns: AtomicU64::new(0),
            queued_keys: config.brownout.as_ref().map(|_| Mutex::new(HashMap::new())),
            panics_armed: AtomicU32::new(config.chaos.armed_panics()),
            hangs_armed: AtomicU32::new(config.chaos.armed_hangs()),
            spans,
            flight: FlightRecorder::with_capacity(config.flight_capacity),
            last_crash_dump: Mutex::new(None),
            config,
        });
        for slot in 0..shared.config.workers {
            spawn_worker(&shared, slot);
        }
        let supervised =
            shared.config.watchdog.is_some() || shared.config.brownout.is_some();
        let supervisor = supervised.then(|| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || supervisor_loop(&shared))
        });
        Ok(ForecastService { shared, supervisor })
    }

    /// Enqueues a forecast request: `window` is the `W·N·F` history
    /// block (frames oldest→newest, node-major) and `seed` determines
    /// the anneal's randomness. Equal `(window, seed)` requests are
    /// coalesced into one anneal and receive identical responses.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShapeMismatch`] for a wrong-length window,
    /// [`ServeError::Overloaded`] when the admission queue is full or
    /// brownout tiering sheds the request (carrying the observed depth
    /// and a retry-after hint),
    /// [`ServeError::ShuttingDown`] after [`shutdown`](Self::shutdown).
    pub fn submit(&self, window: Vec<f64>, seed: u64) -> Result<Ticket, ServeError> {
        let shared = &self.shared;
        let expected = shared.model.layout().history_len();
        if window.len() != expected {
            return Err(ServeError::ShapeMismatch {
                expected,
                actual: window.len(),
            });
        }
        let admission_start = shared.spans.now();
        let key = request_key(seed, &window);
        if shared.config.brownout.is_some() {
            match shared.tier.load(Ordering::Acquire) {
                TIER_SHED => {
                    shared.sink.counter_add(instruments::BROWNOUT_REJECTED, 1);
                    shared.sink.counter_add(instruments::REJECTED, 1);
                    return Err(self.overloaded());
                }
                TIER_BROWNOUT => {
                    // Coalesce-only admission: a request whose twin is
                    // still queued rides the twin's anneal for free;
                    // anything needing new anneal capacity is shed.
                    if shared.key_is_queued(key) {
                        shared.sink.counter_add(instruments::BROWNOUT_ADMITTED, 1);
                    } else {
                        shared.sink.counter_add(instruments::BROWNOUT_REJECTED, 1);
                        shared.sink.counter_add(instruments::REJECTED, 1);
                        return Err(self.overloaded());
                    }
                }
                _ => {}
            }
        }
        let (tx, rx) = mpsc::channel();
        // The trace id doubles as the root `serve.request` span id,
        // reserved now so every child span recorded before reply time
        // already knows its parent (0 under a noop collector).
        let trace_id = shared.spans.reserve();
        let request = Request {
            window,
            seed,
            admitted: Instant::now(),
            retries: 0,
            trace_id,
            key,
            reply: tx,
        };
        match shared.queue.try_push(request) {
            Ok(depth) => {
                shared.note_queued_key(key);
                shared.sink.counter_add(instruments::REQUESTS, 1);
                shared
                    .sink
                    .gauge_set(instruments::QUEUE_DEPTH, depth as f64);
                shared.spans.record(
                    trace_id,
                    trace_id,
                    "serve.admission",
                    admission_start,
                    &[("queue_depth", depth as f64)],
                );
                Ok(Ticket { rx })
            }
            Err(PushError::Full(_)) => {
                shared.sink.counter_add(instruments::REJECTED, 1);
                // Sample the depth at the rejection edge too: brownout
                // post-mortems need the gauge at every decision point.
                shared
                    .sink
                    .gauge_set(instruments::QUEUE_DEPTH, shared.queue.len() as f64);
                Err(self.overloaded())
            }
            Err(PushError::Closed(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// The [`ServeError::Overloaded`] for right now: observed depth plus
    /// a retry-after hint of "one linger + the backlog's worth of
    /// average batch times".
    fn overloaded(&self) -> ServeError {
        let shared = &self.shared;
        let depth = shared.queue.len();
        // Before any batch completes the EWMA is empty; suggest a
        // modest floor rather than "retry immediately".
        let ewma = shared
            .batch_ewma_ns
            .load(Ordering::Relaxed)
            .max(1_000_000);
        let batches_ahead = depth.div_ceil(shared.config.coalesce).max(1) as u64;
        let retry_after = shared.config.linger
            + Duration::from_nanos(ewma.saturating_mul(batches_ahead));
        ServeError::Overloaded {
            capacity: shared.queue.capacity(),
            depth,
            retry_after,
        }
    }

    /// Submits and waits: the blocking one-call path.
    ///
    /// # Errors
    ///
    /// See [`submit`](Self::submit) and [`Ticket::wait`].
    pub fn forecast(&self, window: Vec<f64>, seed: u64) -> Result<ForecastResponse, ServeError> {
        self.submit(window, seed)?.wait()
    }

    /// The health endpoint: a point-in-time [`MetricsSnapshot`] of every
    /// instrument recorded so far (`serve.*`, `guard.*`, `anneal.*`).
    /// Empty when the service was spawned with a noop sink.
    pub fn health(&self) -> MetricsSnapshot {
        self.shared.sink.snapshot()
    }

    /// Service-level statistics digested from [`health`](Self::health).
    pub fn stats(&self) -> ServiceStats {
        ServiceStats::from_snapshot(&self.health())
    }

    /// Current brownout tier: 0 normal, 1 brownout, 2 shed. Always 0
    /// without a [`brownout`](ServeConfig::brownout) policy.
    pub fn brownout_tier(&self) -> u8 {
        self.shared.tier.load(Ordering::Acquire)
    }

    /// The Prometheus text exposition of [`health`](Self::health) —
    /// what an HTTP `/metrics` endpoint would body out verbatim.
    pub fn prometheus(&self) -> String {
        prometheus_text(&self.health())
    }

    /// The black-box flight recorder's current contents: the last
    /// [`ServeConfig::flight_capacity`] failure-edge events (worker
    /// panics, watchdog fires, brownout edges, SLO fallbacks), oldest
    /// first. Always available — the recorder runs even when tracing
    /// and telemetry are off.
    pub fn flight_dump(&self) -> FlightDump {
        self.shared.flight.dump()
    }

    /// The flight dump frozen at the most recent worker panic (the
    /// black-box evidence, immune to later ring rotation), or `None`
    /// if no worker has ever panicked.
    pub fn last_crash_dump(&self) -> Option<FlightDump> {
        self.shared
            .last_crash_dump
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Every span the collector retains, in creation order. Empty
    /// unless the service was spawned via
    /// [`spawn_traced`](Self::spawn_traced).
    pub fn trace_spans(&self) -> Vec<SpanRecord> {
        self.shared.spans.snapshot()
    }

    /// Chrome trace-event JSON of [`trace_spans`](Self::trace_spans),
    /// loadable directly in Perfetto or `chrome://tracing`.
    pub fn chrome_trace(&self) -> String {
        chrome_trace_json(&self.trace_spans())
    }

    /// Stops admitting requests, drains what was already queued, joins
    /// the workers, then the supervisor. Idempotent — a second call is a
    /// no-op — and panic-safe: a worker that crashed (its replacement
    /// took over) never leaves a handle this loop could hang on, and the
    /// supervisor outlives the workers so a batch hung *at* shutdown
    /// still gets watchdog-cancelled rather than wedging the join.
    /// Also runs on drop. Subsequent [`submit`](Self::submit) calls fail
    /// with [`ServeError::ShuttingDown`].
    pub fn shutdown(&mut self) {
        self.shared.stopping.store(true, Ordering::Release);
        self.shared.queue.close();
        // Workers first: drain the handle list until it stays empty.
        // A panicking worker registers its replacement before exiting,
        // so joining a handle happens-after any handle it spawned was
        // registered — the loop cannot terminate early.
        loop {
            let handle = self
                .shared
                .handles
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop();
            match handle {
                Some(handle) => {
                    let _ = handle.join();
                }
                None => break,
            }
        }
        // Only now may the supervisor stop ticking.
        self.shared.workers_done.store(true, Ordering::Release);
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
    }
}

impl Drop for ForecastService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl fmt::Debug for ForecastService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ForecastService")
            .field("workers", &self.shared.config.workers)
            .field("coalesce", &self.shared.config.coalesce)
            .field("queue_capacity", &self.shared.config.queue_capacity)
            .field("queue_depth", &self.shared.queue.len())
            .field("brownout_tier", &self.shared.tier.load(Ordering::Relaxed))
            .finish()
    }
}

/// Spawns a worker thread on `slot` and registers its handle. Called at
/// service start and by the panic handler (replacement workers reuse
/// the crashed worker's slot).
fn spawn_worker(shared: &Arc<Shared>, slot: usize) {
    let cloned = Arc::clone(shared);
    let handle = std::thread::spawn(move || worker_loop(&cloned, slot));
    shared
        .handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(handle);
}

/// One worker: pop a batch, publish it to the watchdog slot, serve it
/// under `catch_unwind`, and on a panic hand everything to the
/// supervision path (quarantine + re-delivery + respawn).
fn worker_loop(shared: &Arc<Shared>, slot: usize) {
    // The PR 5 pooled workspace lives across every batch this worker
    // ever serves: buffers carry capacity between anneals, never values.
    let mut pool: Option<Workspace> = None;
    while let Some((batch, depth)) = shared
        .queue
        .pop_batch(shared.config.coalesce, shared.config.linger)
    {
        for request in &batch {
            shared.drop_queued_key(request.key);
        }
        shared.sink.counter_add(instruments::BATCHES, 1);
        shared
            .sink
            .record(instruments::COALESCE_WIDTH, batch.len() as f64);
        shared
            .sink
            .gauge_set(instruments::QUEUE_DEPTH, depth as f64);
        // Queue-wait spans (admission → this pop) plus the batch span,
        // reserved *before* serving so the anneal spans recorded inside
        // the kernels can parent to it. The batch span rides the first
        // request's trace.
        if shared.spans.is_enabled() {
            for request in &batch {
                shared.spans.record(
                    request.trace_id,
                    request.trace_id,
                    "serve.queue_wait",
                    Some(request.admitted),
                    &[("batch", batch.len() as f64)],
                );
            }
        }
        let batch_span = shared.spans.reserve();
        let batch_start = shared.spans.now();
        let batch_trace = batch.first().map_or(0, |r| r.trace_id);
        let batch_width = batch.len();
        let started = Instant::now();
        // One fresh token per batch, only when a watchdog can fire it;
        // without a watchdog the whole supervision path is `None`s.
        let token = shared.config.watchdog.map(|_| CancelToken::new());
        if let Some(token) = &token {
            shared.slots[slot].begin(token.clone());
        }
        // The tray owns the batch across the unwind boundary: requests
        // leave it only at reply time, so whatever a panic interrupts
        // is still in the tray for exactly-once re-delivery.
        let tray = Mutex::new(batch.into_iter().map(Some).collect::<Vec<_>>());
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            serve_batch(shared, &tray, &mut pool, token.as_ref(), batch_span);
        }));
        shared.slots[slot].clear();
        match outcome {
            Ok(()) => {
                let elapsed = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                note_batch_time(shared, elapsed);
                shared.spans.record_with_id(
                    batch_span,
                    batch_trace,
                    batch_trace,
                    "serve.batch",
                    batch_start,
                    &[("width", batch_width as f64)],
                );
            }
            Err(_) => {
                // The workspace's mid-panic state is garbage; it dies
                // with this thread (the replacement pools a fresh one).
                drop(pool);
                handle_worker_panic(shared, slot, tray);
                return;
            }
        }
    }
}

/// EWMA (α = 1/8) of batch wall time, feeding the retry-after hint.
fn note_batch_time(shared: &Shared, elapsed_ns: u64) {
    let prev = shared.batch_ewma_ns.load(Ordering::Relaxed);
    let next = if prev == 0 {
        elapsed_ns
    } else {
        prev - prev / 8 + elapsed_ns / 8
    };
    shared.batch_ewma_ns.store(next, Ordering::Relaxed);
}

/// The worker panic path: account the crash, re-enqueue every
/// un-replied request exactly once each (budget permitting), and spawn
/// a replacement on the same slot.
fn handle_worker_panic(shared: &Arc<Shared>, slot: usize, tray: Mutex<Vec<Option<Request>>>) {
    shared.crashes.fetch_add(1, Ordering::Relaxed);
    shared.sink.counter_add(instruments::WORKER_PANICS, 1);
    let leftovers: Vec<Request> = tray
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .into_iter()
        .flatten()
        .collect();
    shared.flight.record(
        flight_events::WORKER_PANIC,
        format!("worker {slot}: {} orphaned request(s)", leftovers.len()),
        leftovers.first().map_or(0, |r| r.trace_id),
    );
    let stopping = shared.stopping();
    for mut request in leftovers {
        if !stopping && request.retries < shared.config.crash_retries {
            request.retries += 1;
            shared.sink.counter_add(instruments::REQUEUES, 1);
            shared.note_queued_key(request.key);
            // Capacity-ignoring front re-insert: an admitted request is
            // never shed, and it keeps its FIFO seniority.
            let depth = shared.queue.requeue(request);
            shared
                .sink
                .gauge_set(instruments::QUEUE_DEPTH, depth as f64);
        } else {
            shared.sink.counter_add(instruments::CRASH_FAILURES, 1);
            shared.flight.record(
                flight_events::CRASH_FAILURE,
                format!("seed {} failed after {} re-deliveries", request.seed, request.retries),
                request.trace_id,
            );
            let retries = request.retries;
            let _ = request
                .reply
                .send(Err(ServeError::WorkerCrashed { retries }));
        }
    }
    // Freeze the black box *after* the per-request events above, so the
    // crash dump carries the whole failure edge.
    *shared
        .last_crash_dump
        .lock()
        .unwrap_or_else(|e| e.into_inner()) = Some(shared.flight.dump());
    // Re-enqueue strictly before respawn: the replacement drains the
    // queue until it is closed *and* empty, so items present at its
    // spawn are guaranteed served even mid-shutdown. (Respawn-first
    // could let the replacement observe closed+empty and exit between
    // its spawn and our requeue, stranding the re-delivered requests.)
    if !stopping {
        shared.sink.counter_add(instruments::WORKER_RESPAWNS, 1);
        spawn_worker(shared, slot);
    }
}

/// Serves one popped batch from its tray: SLO triage, chaos injection,
/// group planning (normal vs chaos-hung seeds), then one guarded kernel
/// call per group with per-request fan-out.
fn serve_batch(
    shared: &Arc<Shared>,
    tray: &Mutex<Vec<Option<Request>>>,
    pool: &mut Option<Workspace>,
    token: Option<&CancelToken>,
    batch_span: u64,
) {
    let lock_tray = || tray.lock().unwrap_or_else(|e| e.into_inner());
    let width = lock_tray().iter().flatten().count();
    // Brownout shortens the effective SLO deadline: queued work past the
    // browned-out deadline takes the instant fallback, freeing anneal
    // capacity for what the tighter admission still lets in.
    let tier = shared.tier.load(Ordering::Acquire);
    let deadline = match &shared.config.brownout {
        Some(policy) if tier >= TIER_BROWNOUT => Some(
            shared
                .config
                .deadline
                .map_or(policy.deadline, |d| d.min(policy.deadline)),
        ),
        _ => shared.config.deadline,
    };
    if let Some(deadline) = deadline {
        let expired: Vec<usize> = lock_tray()
            .iter()
            .enumerate()
            .filter_map(|(i, r)| {
                r.as_ref()
                    .filter(|r| r.admitted.elapsed() >= deadline)
                    .map(|_| i)
            })
            .collect();
        for idx in expired {
            let Some(request) = lock_tray()[idx].take() else {
                continue;
            };
            let (prediction, mut health) = persistence_fallback(&shared.model, &request.window);
            health.trace_id = request.trace_id;
            shared.sink.counter_add(instruments::SLO_FALLBACKS, 1);
            shared.sink.counter_add(instruments::DEGRADATIONS, 1);
            shared.flight.record(
                flight_events::SLO_FALLBACK,
                format!("seed {} queued past its deadline", request.seed),
                request.trace_id,
            );
            shared.spans.record(
                request.trace_id,
                request.trace_id,
                "serve.fallback",
                shared.spans.is_enabled().then_some(request.admitted),
                &[("slo", 1.0)],
            );
            respond(shared, request, prediction, health, true, width);
        }
    }
    // Chaos: a batch containing the panic seed dies here — after
    // planning, before any live reply — while the injection budget
    // lasts. Everything still in the tray gets re-delivered.
    if let Some(seed) = shared.config.chaos.panic_on_seed {
        let armed = lock_tray().iter().flatten().any(|r| r.seed == seed)
            && disarm_one(&shared.panics_armed);
        if armed {
            panic!("chaos: injected worker panic");
        }
    }
    // Group planning: chaos-hung seeds split off so innocents in the
    // same batch finish (normal group runs first) before the hung group
    // starts burning watchdog time.
    let (normal, hung) = {
        let guard = lock_tray();
        let hang_seed = shared.config.chaos.hang_on_seed;
        let inject = hang_seed
            .is_some_and(|s| guard.iter().flatten().any(|r| r.seed == s))
            && disarm_one(&shared.hangs_armed);
        let mut normal = Vec::new();
        let mut hung = Vec::new();
        for (i, r) in guard.iter().enumerate() {
            if let Some(r) = r {
                if inject && Some(r.seed) == hang_seed {
                    hung.push(i);
                } else {
                    normal.push(i);
                }
            }
        }
        (normal, hung)
    };
    if !normal.is_empty() {
        serve_group(shared, tray, &normal, &shared.guard, pool, token, width, batch_span);
    }
    if !hung.is_empty() {
        let chaos_guard = chaos_hang_guard(&shared.guard);
        serve_group(shared, tray, &hung, &chaos_guard, pool, token, width, batch_span);
    }
}

/// Decrements an injection budget if any remains; `true` means this
/// call claimed an injection.
fn disarm_one(budget: &AtomicU32) -> bool {
    budget
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
        .is_ok()
}

/// The chaos "infinite-stiffness window": an un-satisfiable guard
/// (zero tolerance, effectively unbounded budget, no retries) that
/// genuinely wedges the integrator until the watchdog's token fires —
/// the honest way to exercise integrator-granularity cancellation.
fn chaos_hang_guard(base: &GuardedAnneal) -> GuardedAnneal {
    let mut guard = *base;
    guard.anneal.tolerance = 0.0;
    guard.anneal.max_time_ns = 1e18;
    guard.policy = RetryPolicy {
        max_retries: 0,
        backoff: 1.0,
    };
    guard
}

/// Serves one group of tray indices: coalesce duplicates, run the
/// supervised guarded kernel once, fan results out. Cancelled windows
/// (watchdog fired mid-group) are re-enqueued or served the persistence
/// fallback instead of their (meaningless) partial states.
#[allow(clippy::too_many_arguments)]
fn serve_group(
    shared: &Arc<Shared>,
    tray: &Mutex<Vec<Option<Request>>>,
    indices: &[usize],
    guard: &GuardedAnneal,
    pool: &mut Option<Workspace>,
    token: Option<&CancelToken>,
    width: usize,
    batch_span: u64,
) {
    let target_len = shared.model.layout().target_len();
    // Coalesce duplicates: identical (seed, window bits) anneal once.
    // f64 bit patterns make the key exact — if the bits match, the
    // anneal provably matches, so fan-out is lossless. Planning reads
    // through the tray (requests stay in it until reply time).
    // The first request mapped to a slot is that window's *primary*:
    // the anneal's spans ride the primary's trace, and riders point at
    // it from their `serve.coalesce` span and shared `HealthReport`.
    let (samples, seeds, assignment, primaries) = {
        let tray = tray.lock().unwrap_or_else(|e| e.into_inner());
        let mut index_of: HashMap<(u64, Vec<u64>), usize> = HashMap::new();
        let mut samples: Vec<Sample> = Vec::with_capacity(indices.len());
        let mut seeds: Vec<u64> = Vec::with_capacity(indices.len());
        let mut assignment: Vec<usize> = Vec::with_capacity(indices.len());
        let mut primaries: Vec<u64> = Vec::with_capacity(indices.len());
        for &i in indices {
            let request = tray[i].as_ref().expect("planned request left the tray");
            let key = (
                request.seed,
                request.window.iter().map(|v| v.to_bits()).collect(),
            );
            let slot = *index_of.entry(key).or_insert_with(|| {
                samples.push(Sample {
                    history: request.window.clone(),
                    target: vec![0.0; target_len],
                });
                seeds.push(request.seed);
                primaries.push(request.trace_id);
                samples.len() - 1
            });
            assignment.push(slot);
        }
        (samples, seeds, assignment, primaries)
    };
    let hits = (indices.len() - samples.len()) as u64;
    if hits > 0 {
        shared.sink.counter_add(instruments::COALESCED_HITS, hits);
    }
    // One scope per distinct window: anneal/guard spans record into the
    // primary's trace, parented under this batch's span. Empty when the
    // collector is noop — the kernels then skip tracing in one branch.
    let scopes: Vec<TraceScope> = if shared.spans.is_enabled() {
        primaries
            .iter()
            .map(|&t| TraceScope::new(shared.spans.clone(), t, batch_span))
            .collect()
    } else {
        Vec::new()
    };
    let results = infer_batch_guarded_seeded_warm_traced(
        &shared.model,
        &samples,
        guard,
        &seeds,
        &shared.config.faults,
        &shared.sink,
        pool,
        token,
        &scopes,
        shared.config.warm_start,
    );
    match results {
        Ok(results) => {
            // Brownout score inputs — dedicated atomics, not the sink,
            // so tiering works identically under a noop sink.
            if shared.config.brownout.is_some() {
                let retries: u64 = results.iter().map(|(_, _, h)| h.retries as u64).sum();
                shared
                    .guard_runs
                    .fetch_add(results.len() as u64, Ordering::Relaxed);
                shared.guard_retries.fetch_add(retries, Ordering::Relaxed);
            }
            for (&i, &slot) in indices.iter().zip(&assignment) {
                let Some(request) = tray.lock().unwrap_or_else(|e| e.into_inner())[i].take()
                else {
                    continue;
                };
                let (prediction, _, health) = &results[slot];
                if health.cancelled {
                    resolve_cancelled(shared, request, width);
                    continue;
                }
                // A rider marks that it coasted on the primary's anneal;
                // its health (cloned below) carries the primary's trace
                // id, which is the pointer a post-mortem follows.
                if request.trace_id != primaries[slot] {
                    shared.spans.record(
                        request.trace_id,
                        request.trace_id,
                        "serve.coalesce",
                        shared.spans.is_enabled().then_some(request.admitted),
                        &[("primary_trace", primaries[slot] as f64)],
                    );
                }
                // Count before replying: a caller that snapshots the
                // instruments right after its response must already see
                // its own degradation reflected.
                if health.degraded {
                    shared.sink.counter_add(instruments::DEGRADATIONS, 1);
                }
                respond(
                    shared,
                    request,
                    prediction.clone(),
                    health.clone(),
                    false,
                    width,
                );
            }
        }
        Err(e) => {
            for &i in indices {
                let Some(request) = tray.lock().unwrap_or_else(|e| e.into_inner())[i].take()
                else {
                    continue;
                };
                let _ = request.reply.send(Err(ServeError::Inference(e.clone())));
            }
        }
    }
}

/// Policy for a watchdog-cancelled request: re-enqueue while the budget
/// lasts (a fresh batch gets a fresh token, so innocents re-run
/// bit-identically), then serve the persistence fallback — the PR 6
/// degradation path, flagged `cancelled` so the client knows why.
fn resolve_cancelled(shared: &Arc<Shared>, mut request: Request, width: usize) {
    if !shared.stopping() && request.retries < shared.config.crash_retries {
        request.retries += 1;
        shared.sink.counter_add(instruments::REQUEUES, 1);
        shared.note_queued_key(request.key);
        let depth = shared.queue.requeue(request);
        shared
            .sink
            .gauge_set(instruments::QUEUE_DEPTH, depth as f64);
    } else {
        let (prediction, mut health) = persistence_fallback(&shared.model, &request.window);
        health.cancelled = true;
        health.trace_id = request.trace_id;
        shared.sink.counter_add(instruments::WATCHDOG_FALLBACKS, 1);
        shared.sink.counter_add(instruments::DEGRADATIONS, 1);
        shared.flight.record(
            flight_events::WATCHDOG_FALLBACK,
            format!("seed {} out of re-deliveries after cancellation", request.seed),
            request.trace_id,
        );
        shared.spans.record(
            request.trace_id,
            request.trace_id,
            "serve.fallback",
            shared.spans.is_enabled().then_some(request.admitted),
            &[("cancelled", 1.0)],
        );
        respond(shared, request, prediction, health, false, width);
    }
}

fn respond(
    shared: &Shared,
    request: Request,
    prediction: Vec<f64>,
    health: HealthReport,
    slo_degraded: bool,
    batch_width: usize,
) {
    let latency_ns = request.admitted.elapsed().as_nanos() as u64;
    shared
        .sink
        .record(instruments::LATENCY_NS, latency_ns as f64);
    // The root span closes here, under the id reserved at submit, so
    // every child recorded along the way already points at it.
    shared.spans.record_with_id(
        request.trace_id,
        request.trace_id,
        0,
        "serve.request",
        shared.spans.is_enabled().then_some(request.admitted),
        &[
            ("batch_width", batch_width as f64),
            ("slo_degraded", f64::from(u8::from(slo_degraded))),
            ("retries", f64::from(request.retries)),
        ],
    );
    // A dropped Ticket just means the caller stopped waiting.
    let _ = request.reply.send(Ok(ForecastResponse {
        prediction,
        health,
        slo_degraded,
        batch_width,
        latency_ns,
    }));
}

/// The supervisor heartbeat: fire the watchdog on overdue batches and
/// re-score the brownout tier. Runs until shutdown has joined every
/// worker — it must outlive them, because a batch hung at shutdown
/// still needs its cancellation.
fn supervisor_loop(shared: &Shared) {
    let watchdog = shared.config.watchdog;
    let brownout = shared.config.brownout.clone();
    let mut tick = Duration::from_millis(50);
    if let Some(deadline) = watchdog {
        tick = tick.min((deadline / 4).max(Duration::from_millis(1)));
    }
    if let Some(policy) = &brownout {
        tick = tick.min(policy.tick);
    }
    let (mut prev_runs, mut prev_retries, mut prev_crashes) = (0u64, 0u64, 0u64);
    while !shared.workers_done.load(Ordering::Acquire) {
        std::thread::sleep(tick);
        if let Some(deadline) = watchdog {
            for (i, slot) in shared.slots.iter().enumerate() {
                if slot.cancel_if_overdue(deadline) {
                    shared.sink.counter_add(instruments::WATCHDOG_CANCELS, 1);
                    shared.flight.record(
                        flight_events::WATCHDOG_CANCEL,
                        format!("worker {i} overdue past {deadline:?}"),
                        0,
                    );
                }
            }
        }
        if let Some(policy) = &brownout {
            if shared.stopping() {
                continue; // admission is closed anyway; stop re-scoring
            }
            let runs = shared.guard_runs.load(Ordering::Relaxed);
            let retries = shared.guard_retries.load(Ordering::Relaxed);
            let crashes = shared.crashes.load(Ordering::Relaxed);
            let inputs = HealthInputs {
                queue_fill: shared.queue.len() as f64 / shared.queue.capacity().max(1) as f64,
                retries: retries.saturating_sub(prev_retries),
                runs: runs.saturating_sub(prev_runs),
                crashes: crashes.saturating_sub(prev_crashes),
            };
            (prev_runs, prev_retries, prev_crashes) = (runs, retries, crashes);
            let score = supervisor::health_score(&inputs, policy);
            let current = shared.tier.load(Ordering::Acquire);
            let next = supervisor::next_tier(score, current, policy);
            if next != current {
                shared.tier.store(next, Ordering::Release);
                shared
                    .sink
                    .counter_add(instruments::BROWNOUT_TRANSITIONS, 1);
                shared.flight.record(
                    flight_events::BROWNOUT_TRANSITION,
                    format!("tier {current} -> {next} (score {score:.3})"),
                    0,
                );
            }
            shared
                .sink
                .gauge_set(instruments::BROWNOUT_TIER, f64::from(next));
        }
    }
}

/// The SLO fallback: tile the newest history frame across the horizon
/// (persistence forecast), sanitising non-finite inputs to 0.0. Instant,
/// allocation-light, always finite — the serving twin of the guard's
/// strict-fallback rung.
fn persistence_fallback(model: &DsGlModel, window: &[f64]) -> (Vec<f64>, HealthReport) {
    let layout = model.layout();
    let frame = layout.frame_len();
    let last = &window[window.len() - frame..];
    let mut health = HealthReport {
        degraded: true,
        ..HealthReport::default()
    };
    let mut prediction = Vec::with_capacity(layout.target_len());
    for _ in 0..layout.horizon() {
        for &v in last {
            if v.is_finite() {
                prediction.push(v);
            } else {
                prediction.push(0.0);
                health.sanitized_nodes += 1;
            }
        }
    }
    (prediction, health)
}

/// Digested service statistics, derived from the `serve.*` instruments
/// of a [`MetricsSnapshot`]. Serde field names are part of the frozen
/// snapshot interface (`tests/serialization.rs`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Requests admitted.
    pub requests: u64,
    /// Requests shed at the door by admission control.
    pub rejected: u64,
    /// Batches executed.
    pub batches: u64,
    /// Requests answered from a coalesced duplicate's anneal.
    pub coalesced_hits: u64,
    /// Responses marked degraded (guard fallback or SLO fallback).
    pub degradations: u64,
    /// Responses served as the SLO persistence fallback.
    pub slo_fallbacks: u64,
    /// Mean requests per executed batch.
    pub mean_coalesce_width: f64,
    /// Median admission-to-reply latency (bucket estimate), ns.
    pub p50_latency_ns: f64,
    /// 99th-percentile admission-to-reply latency (bucket estimate), ns.
    pub p99_latency_ns: f64,
    /// Worker threads serving.
    pub workers: u64,
}

impl ServiceStats {
    /// Digests a snapshot's `serve.*` instruments (zeros when absent,
    /// e.g. from a noop sink).
    pub fn from_snapshot(snapshot: &MetricsSnapshot) -> ServiceStats {
        let latency = snapshot.get(instruments::LATENCY_NS);
        ServiceStats {
            requests: snapshot.counter(instruments::REQUESTS),
            rejected: snapshot.counter(instruments::REJECTED),
            batches: snapshot.counter(instruments::BATCHES),
            coalesced_hits: snapshot.counter(instruments::COALESCED_HITS),
            degradations: snapshot.counter(instruments::DEGRADATIONS),
            slo_fallbacks: snapshot.counter(instruments::SLO_FALLBACKS),
            mean_coalesce_width: snapshot
                .get(instruments::COALESCE_WIDTH)
                .map_or(0.0, |i| i.mean()),
            p50_latency_ns: latency.map_or(0.0, |i| i.quantile(0.5)),
            p99_latency_ns: latency.map_or(0.0, |i| i.quantile(0.99)),
            workers: snapshot
                .get(instruments::WORKERS)
                .map_or(0, |i| i.last as u64),
        }
    }
}
