//! Test-only chaos injection into the live service.
//!
//! The chaos campaign (and the exactly-once test battery) needs to make
//! the *service* fail in controlled, reproducible ways: a worker thread
//! panicking mid-batch, a window wedging the integrator. Neither can be
//! expressed through [`dsgl_ising::fault::FaultModel`] — that models
//! the analog substrate, whose faults the guard already absorbs; these
//! model the *process*, which is exactly what the supervision layer
//! exists to absorb.
//!
//! Injection is keyed by request seed so a campaign can aim faults at
//! designated victim requests while asserting that innocent bystanders
//! still complete bit-identically:
//!
//! - **Panic**: the first [`panic_budget`](ChaosConfig::panic_budget)
//!   batches containing the target seed panic before annealing — after
//!   planning, before any reply — so every request in the batch is
//!   orphaned and must be re-delivered exactly once by the respawned
//!   worker.
//! - **Hang**: the first [`hang_budget`](ChaosConfig::hang_budget)
//!   batches containing the target seed serve that seed's windows under
//!   a pathologically un-satisfiable guard (zero tolerance, effectively
//!   infinite time budget, no retries) — an infinite-stiffness window
//!   that only the watchdog's [`CancelToken`](dsgl_ising::CancelToken)
//!   can stop. [`crate::ServeConfig::validate`] therefore refuses hang
//!   chaos without a watchdog.
//!
//! A drained budget disarms the fault: the target seed then serves
//! normally, which is what lets the battery assert that even victim
//! requests eventually complete bit-identical to the serial reference
//! (when the re-enqueue budget outlives the chaos budget).
//! [`ChaosConfig::none`] is the default and is completely free — the
//! serving hot path checks one `Option` per batch.

/// Fault-injection knobs for chaos drills. See the module docs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed whose batches panic the serving worker (before any reply).
    pub panic_on_seed: Option<u64>,
    /// How many batches may panic before the fault disarms.
    pub panic_budget: u32,
    /// Seed whose windows anneal under an un-satisfiable guard until
    /// the watchdog cancels them.
    pub hang_on_seed: Option<u64>,
    /// How many batches may hang before the fault disarms.
    pub hang_budget: u32,
}

impl ChaosConfig {
    /// No chaos — the production configuration.
    pub fn none() -> Self {
        ChaosConfig::default()
    }

    /// Whether every fault is disarmed.
    pub fn is_none(&self) -> bool {
        self.armed_panics() == 0 && self.armed_hangs() == 0
    }

    /// Arms the worker-panic fault for `seed`, at most `budget` times.
    pub fn panic_on_seed(mut self, seed: u64, budget: u32) -> Self {
        self.panic_on_seed = Some(seed);
        self.panic_budget = budget;
        self
    }

    /// Arms the hung-window fault for `seed`, at most `budget` times.
    /// Requires a [`ServeConfig::watchdog`](crate::ServeConfig::watchdog).
    pub fn hang_on_seed(mut self, seed: u64, budget: u32) -> Self {
        self.hang_on_seed = Some(seed);
        self.hang_budget = budget;
        self
    }

    /// Panic injections this config starts armed with.
    pub(crate) fn armed_panics(&self) -> u32 {
        if self.panic_on_seed.is_some() {
            self.panic_budget
        } else {
            0
        }
    }

    /// Hang injections this config starts armed with.
    pub(crate) fn armed_hangs(&self) -> u32 {
        if self.hang_on_seed.is_some() {
            self.hang_budget
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_disarmed_and_builders_arm() {
        assert!(ChaosConfig::none().is_none());
        // A seed with a zero budget is still disarmed.
        assert!(ChaosConfig::none().panic_on_seed(3, 0).is_none());
        let chaos = ChaosConfig::none().panic_on_seed(3, 2).hang_on_seed(4, 1);
        assert!(!chaos.is_none());
        assert_eq!(chaos.armed_panics(), 2);
        assert_eq!(chaos.armed_hangs(), 1);
    }
}
