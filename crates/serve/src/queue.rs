//! Bounded MPMC request queue with batch-forming pops.
//!
//! The admission front-end of the service: producers [`try_push`]
//! (`BoundedQueue::try_push`) and are rejected immediately when the
//! queue is full — load is shed at the door instead of growing an
//! unbounded backlog whose tail latency nobody can meet. Consumers
//! [`pop_batch`](BoundedQueue::pop_batch) up to `max` requests at once,
//! lingering briefly for stragglers so coalesced batches actually fill
//! under closed-loop load (the TensorFlow-Serving batching idiom).
//!
//! Batch formation is pure grouping: *which* requests share a pop never
//! affects *what* each request computes (every window anneals under its
//! own seed), so the linger trades latency for throughput without
//! touching the bit-identity contract.
//!
//! Observability: the service samples the `serve.queue_depth` gauge at
//! every depth-changing edge — successful push, full-queue rejection,
//! batch pop, and crash/cancel [`requeue`](BoundedQueue::requeue) (which
//! returns the new depth for exactly that reason) — so a brownout
//! decision can be reconstructed from the gauge series after the fact.
//! Per-request queue time is the `serve.queue_wait` span recorded at
//! pop time when tracing is enabled.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Why a push was refused; the rejected item is handed back.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity: shed the request now (admission
    /// control), do not wait.
    Full(T),
    /// The queue was closed for shutdown.
    Closed(T),
}

struct Inner<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue (mutex + condvar).
///
/// Contention is negligible at serving granularity: producers touch the
/// lock once per request, consumers once per batch.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` waiting items.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                queue: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admission capacity this queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current backlog depth.
    pub fn len(&self) -> usize {
        self.lock().queue.len()
    }

    /// Whether the backlog is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().queue.is_empty()
    }

    /// Enqueues without blocking; on success returns the new backlog
    /// depth.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when at capacity, [`PushError::Closed`] after
    /// [`close`](Self::close); both return the item.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.queue.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.queue.push_back(item);
        let depth = inner.queue.len();
        drop(inner);
        self.not_empty.notify_all();
        Ok(depth)
    }

    /// Blocks until at least one item is available, then drains up to
    /// `max` items, lingering up to `linger` for the batch to fill
    /// (returning as soon as it does). Returns the batch plus the
    /// backlog depth left behind, or `None` once the queue is closed
    /// *and* drained — the consumer's signal to exit.
    pub fn pop_batch(&self, max: usize, linger: Duration) -> Option<(Vec<T>, usize)> {
        let max = max.max(1);
        let mut inner = self.lock();
        while inner.queue.is_empty() && !inner.closed {
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
        if inner.queue.is_empty() {
            return None; // closed and drained
        }
        let mut batch = Vec::with_capacity(max);
        while batch.len() < max {
            match inner.queue.pop_front() {
                Some(item) => batch.push(item),
                None => break,
            }
        }
        if batch.len() < max && !inner.closed && !linger.is_zero() {
            // One absolute deadline for the whole linger: each wakeup —
            // spurious, item-bearing, or a close — waits only for the
            // *remaining* time, so a storm of early wakeups can never
            // stretch the linger past `linger` total
            // (`linger_deadline_survives_wakeup_storms` pins this).
            let deadline = Instant::now() + linger;
            loop {
                if batch.len() == max || inner.closed {
                    break;
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                let (guard, _) = self
                    .not_empty
                    .wait_timeout(inner, remaining)
                    .unwrap_or_else(|e| e.into_inner());
                inner = guard;
                while batch.len() < max {
                    match inner.queue.pop_front() {
                        Some(item) => batch.push(item),
                        None => break,
                    }
                }
            }
        }
        let depth = inner.queue.len();
        Some((batch, depth))
    }

    /// Re-enqueues an item at the *front* of the queue, ignoring both
    /// capacity and the closed flag, and returns the new depth.
    ///
    /// This is the exactly-once re-delivery path for requests a crashed
    /// or cancelled worker left un-replied: they were already admitted
    /// once, so shedding them now would turn a worker fault into a lost
    /// response, and FIFO position (front) preserves their original
    /// admission order ahead of younger traffic. Never use this for new
    /// admissions — that is [`try_push`](Self::try_push)'s job.
    pub fn requeue(&self, item: T) -> usize {
        let mut inner = self.lock();
        inner.queue.push_front(item);
        let depth = inner.queue.len();
        drop(inner);
        self.not_empty.notify_all();
        depth
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// and consumers drain what remains, then see `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_reports_depth() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.capacity(), 2);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        assert!(matches!(q.try_push(3), Err(PushError::Full(3))));
        assert_eq!(q.len(), 2);
        let (batch, depth) = q.pop_batch(8, Duration::ZERO).unwrap();
        assert_eq!(batch, vec![1, 2]);
        assert_eq!(depth, 0);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_batch_caps_at_max_in_fifo_order() {
        let q = BoundedQueue::new(16);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let (batch, depth) = q.pop_batch(3, Duration::ZERO).unwrap();
        assert_eq!(batch, vec![0, 1, 2]);
        assert_eq!(depth, 2);
        let (batch, depth) = q.pop_batch(3, Duration::ZERO).unwrap();
        assert_eq!(batch, vec![3, 4]);
        assert_eq!(depth, 0);
    }

    #[test]
    fn linger_fills_the_batch_from_a_late_producer() {
        let q = Arc::new(BoundedQueue::new(16));
        q.try_push(0).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                q.try_push(1).unwrap();
                q.try_push(2).unwrap();
            })
        };
        // Without linger we'd get just [0]; with a generous one the
        // late items join the same batch.
        let (batch, _) = q.pop_batch(3, Duration::from_secs(5)).unwrap();
        producer.join().unwrap();
        assert_eq!(batch, vec![0, 1, 2]);
    }

    #[test]
    fn linger_deadline_survives_wakeup_storms() {
        // A trickle of producers wakes the lingering consumer over and
        // over without ever filling the batch. If any wakeup restarted
        // the full linger, the pop would stretch to ~storm length; the
        // absolute deadline bounds it near the configured linger.
        let q = Arc::new(BoundedQueue::new(1024));
        q.try_push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 1..200u32 {
                    std::thread::sleep(Duration::from_millis(1));
                    if q.try_push(i).is_err() {
                        break;
                    }
                }
            })
        };
        let start = Instant::now();
        let (batch, _) = q.pop_batch(1000, Duration::from_millis(40)).unwrap();
        let elapsed = start.elapsed();
        assert!(!batch.is_empty());
        assert!(
            elapsed < Duration::from_millis(150),
            "linger drifted to {elapsed:?} under a wakeup storm"
        );
        q.close();
        producer.join().unwrap();
    }

    #[test]
    fn requeue_goes_to_the_front_ignoring_capacity_and_close() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        // At capacity: a new admission sheds, a re-delivery never does.
        assert!(matches!(q.try_push(3), Err(PushError::Full(3))));
        assert_eq!(q.requeue(0), 3);
        let (batch, _) = q.pop_batch(8, Duration::ZERO).unwrap();
        assert_eq!(batch, vec![0, 1, 2], "requeued item must lead FIFO");
        // Closed: still accepted, still drained before the exit signal.
        q.close();
        assert_eq!(q.requeue(9), 1);
        let (batch, depth) = q.pop_batch(8, Duration::ZERO).unwrap();
        assert_eq!(batch, vec![9]);
        assert_eq!(depth, 0);
        assert!(q.pop_batch(8, Duration::ZERO).is_none());
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert!(matches!(q.try_push(8), Err(PushError::Closed(8))));
        let (batch, depth) = q.pop_batch(4, Duration::from_secs(1)).unwrap();
        assert_eq!(batch, vec![7]);
        assert_eq!(depth, 0);
        assert!(q.pop_batch(4, Duration::from_secs(1)).is_none());
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_batch(4, Duration::ZERO))
        };
        std::thread::sleep(Duration::from_millis(5));
        q.close();
        assert!(consumer.join().unwrap().is_none());
    }
}
