//! `dsgl-serve`: a long-lived, concurrent forecast service over trained
//! DS-GL models.
//!
//! The paper's pipeline — train once, anneal per window — is exactly
//! the shape a serving layer wants: the model is immutable shared
//! state, every request is an independent anneal, and batches of
//! requests amortise dispatch. This crate turns the one-shot facade
//! into that layer:
//!
//! - **Admission** ([`queue::BoundedQueue`]): requests enter a bounded
//!   queue; a full queue sheds load *now* ([`ServeError::Overloaded`])
//!   instead of growing a backlog whose deadline nobody can meet.
//! - **Coalescing** (worker loop in [`ForecastService`]): workers pull
//!   up to [`ServeConfig::coalesce`] requests per pop (lingering
//!   briefly for stragglers), collapse duplicate `(window, seed)`
//!   pairs into a single anneal, and run the distinct windows through
//!   one seeded guarded batch call with a per-worker pooled
//!   [`dsgl_ising::Workspace`] — steady-state serving allocates
//!   nothing per request (the PR 5 take/adopt migration).
//! - **SLO degradation**: with a [`ServeConfig::deadline`], requests
//!   that sat queued past it are answered instantly with the sanitised
//!   persistence fallback (finite, degraded, honest in its
//!   [`HealthReport`](dsgl_core::HealthReport)) rather than annealed
//!   even later — the serving twin of the guard's strict-fallback rung
//!   from PR 3.
//! - **Health** ([`ForecastService::health`]): the `serve.*` instrument
//!   family ([`instruments`]) lands in the same
//!   [`MetricsSnapshot`](dsgl_core::MetricsSnapshot) schema dashboards
//!   already parse, and [`ForecastService::stats`] digests it into
//!   p50/p99 latency, coalesce width, and degradation counts.
//! - **Supervision** (PR 8): worker bodies run under `catch_unwind` —
//!   a panic quarantines the worker's pooled workspace, re-enqueues its
//!   un-replied requests exactly once each (then
//!   [`ServeError::WorkerCrashed`] past the
//!   [`ServeConfig::crash_retries`] budget) and respawns a fresh
//!   worker. A [`ServeConfig::watchdog`] deadline arms a supervisor
//!   heartbeat that cancels hung anneals cooperatively (integrator-step
//!   granularity via [`dsgl_core::CancelToken`]), routing the cancelled
//!   requests back through re-delivery and, budget exhausted, the
//!   persistence fallback. A [`config::BrownoutPolicy`] adds graduated
//!   admission: Normal → Brownout (coalesce-only, shorter deadline) →
//!   Shed, driven by a health score with hysteresis. The
//!   [`chaos::ChaosConfig`] knobs inject worker panics and hung windows
//!   for the chaos campaign that proves all of the above.
//! - **Tracing & the black box** (PR 9): spawn via
//!   [`ForecastService::spawn_traced`] with a
//!   [`SpanCollector`](dsgl_core::SpanCollector) and every request
//!   records a causal span tree — `serve.request` →
//!   `serve.admission`/`serve.queue_wait` → `serve.batch` →
//!   `anneal.{strict,adaptive,lockstep}`/`guard.retry`, plus
//!   `serve.coalesce` and `serve.fallback` markers — exportable as
//!   Perfetto-loadable Chrome trace JSON
//!   ([`ForecastService::chrome_trace`]). Independently, an always-on
//!   [`FlightRecorder`](dsgl_core::FlightRecorder) keeps the last
//!   [`ServeConfig::flight_capacity`] failure-edge events
//!   ([`flight_events`]) for [`ForecastService::flight_dump`], frozen
//!   automatically at each worker panic
//!   ([`ForecastService::last_crash_dump`]). The metrics snapshot
//!   exports as Prometheus text via [`ForecastService::prometheus`].
//!   All of it obeys the telemetry contract: spans are recorded only
//!   after dynamics finish, and the noop collector is one branch —
//!   tracing on vs off is bit-identical.
//!
//! # The determinism contract
//!
//! A response's bits are a pure function of (model, window, seed,
//! guard policy, fault model). Each window anneals under
//! `StdRng::seed_from_u64(window_seed(seed, 0))` — exactly how a
//! serial one-request-at-a-time run would anneal it — so queue order,
//! batch grouping, linger, worker count, and duplicate collapsing are
//! all bit-invisible. `tests/determinism.rs` pins this across coalesce
//! widths {1, 4, 8} × worker counts {1, 2, 8}.
//!
//! # Example
//!
//! ```
//! use dsgl_serve::{ForecastService, ServeConfig};
//! use dsgl_core::{DsGlModel, GuardedAnneal, TelemetrySink, VariableLayout};
//! use dsgl_ising::AnnealConfig;
//!
//! # fn main() -> Result<(), dsgl_serve::ServeError> {
//! let layout = VariableLayout::new(1, 4, 1);
//! let mut model = DsGlModel::new(layout);
//! model.init_persistence(0.6);
//! let mut service = ForecastService::spawn(
//!     model,
//!     GuardedAnneal::new(AnnealConfig::default()),
//!     TelemetrySink::enabled(),
//!     ServeConfig::default(),
//! )?;
//! let response = service.forecast(vec![0.25; 4], 7)?;
//! assert_eq!(response.prediction.len(), 4);
//! assert!(response.prediction.iter().all(|v| v.is_finite()));
//! // Same window, same seed → bit-identical answer, served or not.
//! let again = service.forecast(vec![0.25; 4], 7)?;
//! assert_eq!(response.prediction, again.prediction);
//! service.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod chaos;
pub mod config;
pub mod queue;
pub mod service;
pub mod supervisor;

pub use chaos::ChaosConfig;
pub use config::{BrownoutPolicy, ServeConfig};
pub use service::{ForecastResponse, ForecastService, ServeError, ServiceStats, Ticket};

/// The `serve.*` instrument family recorded into the service's
/// [`TelemetrySink`](dsgl_core::TelemetrySink). Names are a frozen
/// interface (`tests/serialization.rs`), like every other family in
/// the snapshot schema.
pub mod instruments {
    /// Counter: requests admitted past the queue door.
    pub const REQUESTS: &str = "serve.requests";
    /// Counter: requests shed by admission control (queue full).
    pub const REJECTED: &str = "serve.rejected";
    /// Counter: batches executed by workers.
    pub const BATCHES: &str = "serve.batches";
    /// Gauge: backlog depth observed at the latest push/pop.
    pub const QUEUE_DEPTH: &str = "serve.queue_depth";
    /// Histogram: requests per executed batch.
    pub const COALESCE_WIDTH: &str = "serve.coalesce_width";
    /// Counter: requests answered from a coalesced duplicate's anneal.
    pub const COALESCED_HITS: &str = "serve.coalesced_hits";
    /// Histogram: admission-to-reply wall latency, ns.
    pub const LATENCY_NS: &str = "serve.latency_ns";
    /// Counter: responses marked degraded (guard or SLO fallback).
    pub const DEGRADATIONS: &str = "serve.degradations";
    /// Counter: responses served as the SLO persistence fallback.
    pub const SLO_FALLBACKS: &str = "serve.slo_fallbacks";
    /// Gauge: worker threads serving.
    pub const WORKERS: &str = "serve.workers";
    /// Counter: worker panics caught by the supervision boundary.
    pub const WORKER_PANICS: &str = "serve.worker_panics";
    /// Counter: replacement workers spawned after a panic.
    pub const WORKER_RESPAWNS: &str = "serve.worker_respawns";
    /// Counter: orphaned requests re-enqueued for exactly-once
    /// re-delivery (after a panic or a watchdog cancellation).
    pub const REQUEUES: &str = "serve.requeues";
    /// Counter: requests failed with `WorkerCrashed` after exhausting
    /// the crash-retry budget.
    pub const CRASH_FAILURES: &str = "serve.crash_failures";
    /// Counter: hung batches cancelled by the watchdog.
    pub const WATCHDOG_CANCELS: &str = "serve.watchdog_cancels";
    /// Counter: cancelled requests served the persistence fallback
    /// after exhausting the re-delivery budget.
    pub const WATCHDOG_FALLBACKS: &str = "serve.watchdog_fallbacks";
    /// Gauge: current brownout tier (0 normal, 1 brownout, 2 shed).
    pub const BROWNOUT_TIER: &str = "serve.brownout_tier";
    /// Counter: brownout tier transitions.
    pub const BROWNOUT_TRANSITIONS: &str = "serve.brownout_transitions";
    /// Counter: requests admitted by brownout's coalesce-only gate.
    pub const BROWNOUT_ADMITTED: &str = "serve.brownout_admitted";
    /// Counter: requests shed by the brownout or shed tiers.
    pub const BROWNOUT_REJECTED: &str = "serve.brownout_rejected";
}

/// Frozen event-kind strings of the service's black-box
/// [`FlightRecorder`](dsgl_core::FlightRecorder) (dumped by
/// [`ForecastService::flight_dump`]). Like the instrument names, these
/// are a stable interface: dashboards and post-mortem tooling match on
/// them, so they only ever grow.
pub mod flight_events {
    /// A worker panic was caught at the supervision boundary; the
    /// detail carries the slot and orphaned-request count, the trace id
    /// points at the batch's first request (0 when untraced).
    pub const WORKER_PANIC: &str = "worker.panic";
    /// A request failed typed ([`ServeError::WorkerCrashed`]) after
    /// exhausting the crash-retry budget.
    pub const CRASH_FAILURE: &str = "crash.failure";
    /// The watchdog fired a hung batch's cancel token.
    pub const WATCHDOG_CANCEL: &str = "watchdog.cancel";
    /// A cancelled request exhausted re-delivery and was served the
    /// persistence fallback.
    pub const WATCHDOG_FALLBACK: &str = "watchdog.fallback";
    /// The brownout tier changed; the detail carries the edge and the
    /// health score that drove it.
    pub const BROWNOUT_TRANSITION: &str = "brownout.transition";
    /// A request queued past its SLO deadline was served the
    /// persistence fallback.
    pub const SLO_FALLBACK: &str = "slo.fallback";
}
