//! Service configuration: worker pool size, coalescing, admission, SLO,
//! supervision (watchdog, crash retries, brownout), and chaos injection.

use dsgl_core::inference::WarmStart;
use dsgl_ising::fault::FaultModel;
use std::time::Duration;

use crate::chaos::ChaosConfig;
use crate::ServeError;

/// Tuning knobs for a [`ForecastService`](crate::ForecastService).
///
/// The defaults serve correctly out of the box: one worker, batches of
/// up to 8 coalesced requests, a 64-deep admission queue, a 200 µs
/// batch-forming linger, no deadline (never degrade on latency), and a
/// fault-free substrate. The scheduling knobs can never change forecast
/// bits — they only move latency, throughput, and shed/degrade
/// behaviour. The two knobs that *do* shape forecasts do so
/// deterministically per request, independent of load and batching:
/// [`faults`](Self::faults) (explicit substrate degradation) and
/// [`warm_start`](Self::warm_start) (a per-window pure function of the
/// machine — see its field docs).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads pulling batches off the queue (each owns a
    /// pooled machine/workspace pair).
    pub workers: usize,
    /// Maximum requests coalesced into one batched inference call.
    pub coalesce: usize,
    /// Admission-queue depth; a full queue rejects new requests with
    /// [`ServeError::Overloaded`] instead of growing a backlog.
    pub queue_capacity: usize,
    /// How long a worker lingers for a partial batch to fill before
    /// running it. Grouping never changes bits, so this only trades a
    /// bounded latency bump for wider batches.
    pub linger: Duration,
    /// Optional SLO deadline measured from admission. A request still
    /// queued past its deadline is answered with the sanitised
    /// persistence fallback (degraded, finite, instant) instead of
    /// annealing even later. `None` disables SLO degradation.
    pub deadline: Option<Duration>,
    /// Fault model injected into every pooled forecaster (for chaos
    /// drills and the degradation test battery).
    pub faults: FaultModel,
    /// Optional hung-anneal watchdog: a worker whose batch has been
    /// annealing longer than this has its [`CancelToken`]
    /// (`dsgl_ising::CancelToken`) fired by the supervisor thread. The
    /// cancelled requests are re-enqueued (up to
    /// [`crash_retries`](Self::crash_retries)) and then served the
    /// persistence fallback. `None` disables the watchdog (and the
    /// per-batch token entirely — zero supervision overhead).
    pub watchdog: Option<Duration>,
    /// How many times an in-flight request orphaned by a worker panic
    /// or a watchdog cancellation is re-enqueued before the service
    /// gives up on annealing it (panic → typed
    /// [`ServeError::WorkerCrashed`]; cancellation → persistence
    /// fallback).
    pub crash_retries: u32,
    /// Optional graduated brownout admission. `None` keeps the binary
    /// full-queue shed of PR 6.
    pub brownout: Option<BrownoutPolicy>,
    /// Test-only fault injection into the live service (worker panics,
    /// hung windows). [`ChaosConfig::none`] in production.
    pub chaos: ChaosConfig,
    /// Ring capacity of the service's black-box
    /// [`FlightRecorder`](dsgl_core::FlightRecorder): how many recent
    /// structured events (worker panics, watchdog fires, brownout
    /// edges, SLO fallbacks) a
    /// [`flight_dump`](crate::ForecastService::flight_dump) retains.
    /// The recorder is always on — events are rare failure edges, never
    /// per-request work — so this only bounds post-mortem memory.
    pub flight_capacity: usize,
    /// How each served window seeds its machine (default
    /// [`WarmStart::Cold`], the bit-exact historical behaviour).
    /// [`WarmStart::Multigrid`] warm-starts every window from a
    /// Louvain-coarsened coarse solve; because the warm start is a pure
    /// per-window function of the machine (internally seeded, zero
    /// caller-RNG draws), request coalescing and batch regrouping remain
    /// bit-invisible. [`WarmStart::Chained`] couples windows *within a
    /// batch*, which would make forecasts depend on how requests
    /// happened to coalesce — [`validate`](Self::validate) rejects it.
    pub warm_start: WarmStart,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 1,
            coalesce: 8,
            queue_capacity: 64,
            linger: Duration::from_micros(200),
            deadline: None,
            faults: FaultModel::none(),
            watchdog: None,
            crash_retries: 2,
            brownout: None,
            chaos: ChaosConfig::none(),
            flight_capacity: 256,
            warm_start: WarmStart::Cold,
        }
    }
}

impl ServeConfig {
    /// Sets the worker-thread count (≥ 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the maximum coalesced batch width (≥ 1).
    pub fn coalesce(mut self, width: usize) -> Self {
        self.coalesce = width;
        self
    }

    /// Sets the admission-queue capacity (≥ 1).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the batch-forming linger.
    pub fn linger(mut self, linger: Duration) -> Self {
        self.linger = linger;
        self
    }

    /// Sets the SLO deadline (measured from admission).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Injects a fault model into the pooled forecasters.
    pub fn faults(mut self, faults: FaultModel) -> Self {
        self.faults = faults;
        self
    }

    /// Arms the hung-anneal watchdog.
    pub fn watchdog(mut self, deadline: Duration) -> Self {
        self.watchdog = Some(deadline);
        self
    }

    /// Sets the re-enqueue budget for crash/cancel-orphaned requests.
    pub fn crash_retries(mut self, retries: u32) -> Self {
        self.crash_retries = retries;
        self
    }

    /// Enables graduated brownout admission.
    pub fn brownout(mut self, policy: BrownoutPolicy) -> Self {
        self.brownout = Some(policy);
        self
    }

    /// Arms test-only chaos injection.
    pub fn chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = chaos;
        self
    }

    /// Sets the flight-recorder ring capacity (≥ 1).
    pub fn flight_capacity(mut self, capacity: usize) -> Self {
        self.flight_capacity = capacity;
        self
    }

    /// Sets the per-window warm-start policy ([`WarmStart::Chained`] is
    /// rejected by [`validate`](Self::validate) — see the field docs).
    pub fn warm_start(mut self, warm: WarmStart) -> Self {
        self.warm_start = warm;
        self
    }

    /// Convenience for
    /// [`warm_start`](Self::warm_start)`(WarmStart::Multigrid {..})`.
    pub fn multigrid(self, levels: usize, coarse_tol: f64) -> Self {
        self.warm_start(WarmStart::Multigrid { levels, coarse_tol })
    }

    /// Rejects configurations the service cannot run.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] on a zero worker count, zero
    /// coalesce width, or zero queue capacity.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "worker count must be at least 1".to_owned(),
            });
        }
        if self.coalesce == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "coalesce width must be at least 1".to_owned(),
            });
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "queue capacity must be at least 1".to_owned(),
            });
        }
        if self.flight_capacity == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "flight-recorder capacity must be at least 1".to_owned(),
            });
        }
        if self.watchdog.is_some_and(|w| w.is_zero()) {
            return Err(ServeError::InvalidConfig {
                reason: "watchdog deadline must be non-zero".to_owned(),
            });
        }
        if let Some(b) = &self.brownout {
            b.validate()?;
        }
        if self.chaos.hang_on_seed.is_some() && self.watchdog.is_none() {
            return Err(ServeError::InvalidConfig {
                reason: "hang chaos requires a watchdog (nothing else can unwedge the worker)"
                    .to_owned(),
            });
        }
        if let WarmStart::Chained { .. } = self.warm_start {
            return Err(ServeError::InvalidConfig {
                reason: "chained warm starts couple windows within a coalesced batch, making \
                         forecasts depend on request grouping; use Cold or Multigrid"
                    .to_owned(),
            });
        }
        if let WarmStart::Multigrid { coarse_tol, .. } = self.warm_start {
            if !coarse_tol.is_finite() || coarse_tol <= 0.0 {
                return Err(ServeError::InvalidConfig {
                    reason: "multigrid coarse tolerance must be finite and positive".to_owned(),
                });
            }
        }
        Ok(())
    }
}

/// Graduated brownout admission: a supervisor-computed health score
/// (queue fill + weighted retry rate + weighted recent crashes) drives
/// the service through three tiers with hysteresis:
///
/// - **Normal** (tier 0): admit everything the queue has room for.
/// - **Brownout** (tier 1): admit only requests that coalesce with one
///   already queued (they cost nothing extra to anneal) and shorten the
///   effective SLO deadline to [`deadline`](Self::deadline); everything
///   else is shed with a retry-after hint.
/// - **Shed** (tier 2): admit nothing.
///
/// Hysteresis (`exit < enter`, `shed_exit < shed_enter`) keeps the tier
/// from flapping on a score hovering at a threshold. Admission tiering
/// never touches forecast bits — it only decides *whether* a request is
/// served, never *how*.
#[derive(Debug, Clone, PartialEq)]
pub struct BrownoutPolicy {
    /// Score at or above which Normal degrades to Brownout.
    pub enter: f64,
    /// Score at or below which Brownout recovers to Normal.
    pub exit: f64,
    /// Score at or above which any tier escalates to Shed.
    pub shed_enter: f64,
    /// Score at or below which Shed de-escalates (to Brownout, or
    /// straight to Normal below [`exit`](Self::exit)).
    pub shed_exit: f64,
    /// Effective SLO deadline while browned out (usually shorter than
    /// [`ServeConfig::deadline`]): queued requests past it take the
    /// persistence fallback, freeing anneal capacity for the rest.
    pub deadline: Duration,
    /// Weight of the guard retry rate (retries per served window since
    /// the last tick) in the health score.
    pub retry_weight: f64,
    /// Weight of recent worker crashes (capped at 2 per tick) in the
    /// health score.
    pub crash_weight: f64,
    /// Supervisor re-scoring cadence.
    pub tick: Duration,
}

impl Default for BrownoutPolicy {
    /// Enter brownout at score 0.75 (≈ ¾ queue fill with healthy
    /// guards), recover at 0.4; shed at 1.5, recover from shed at 0.9;
    /// 25 ms brownout deadline, unit retry weight, half-unit crash
    /// weight, 5 ms tick.
    fn default() -> Self {
        BrownoutPolicy {
            enter: 0.75,
            exit: 0.4,
            shed_enter: 1.5,
            shed_exit: 0.9,
            deadline: Duration::from_millis(25),
            retry_weight: 1.0,
            crash_weight: 0.5,
            tick: Duration::from_millis(5),
        }
    }
}

impl BrownoutPolicy {
    /// Rejects thresholds that cannot express a hysteresis band.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] when thresholds are unordered or
    /// non-finite, weights are negative or non-finite, or a duration is
    /// zero.
    pub fn validate(&self) -> Result<(), ServeError> {
        let invalid = |reason: &str| {
            Err(ServeError::InvalidConfig {
                reason: format!("brownout: {reason}"),
            })
        };
        let nums = [
            self.enter,
            self.exit,
            self.shed_enter,
            self.shed_exit,
            self.retry_weight,
            self.crash_weight,
        ];
        if nums.iter().any(|v| !v.is_finite()) {
            return invalid("thresholds and weights must be finite");
        }
        if self.retry_weight < 0.0 || self.crash_weight < 0.0 {
            return invalid("weights must be non-negative");
        }
        if !(self.exit <= self.enter && self.enter <= self.shed_enter) {
            return invalid("need exit <= enter <= shed_enter");
        }
        if self.shed_exit > self.shed_enter {
            return invalid("need shed_exit <= shed_enter");
        }
        if self.deadline.is_zero() || self.tick.is_zero() {
            return invalid("deadline and tick must be non-zero");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate_and_builders_chain() {
        let cfg = ServeConfig::default();
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.coalesce, 8);
        assert!(cfg.deadline.is_none());

        let cfg = ServeConfig::default()
            .workers(4)
            .coalesce(16)
            .queue_capacity(2)
            .linger(Duration::from_millis(1))
            .deadline(Duration::from_millis(50));
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.coalesce, 16);
        assert_eq!(cfg.queue_capacity, 2);
        assert_eq!(cfg.deadline, Some(Duration::from_millis(50)));
    }

    #[test]
    fn zero_knobs_are_rejected() {
        for cfg in [
            ServeConfig::default().workers(0),
            ServeConfig::default().coalesce(0),
            ServeConfig::default().queue_capacity(0),
            ServeConfig::default().watchdog(Duration::ZERO),
            ServeConfig::default().flight_capacity(0),
        ] {
            assert!(matches!(
                cfg.validate(),
                Err(ServeError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn supervision_knobs_validate() {
        let cfg = ServeConfig::default()
            .watchdog(Duration::from_millis(100))
            .crash_retries(3)
            .brownout(BrownoutPolicy::default());
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.watchdog, Some(Duration::from_millis(100)));
        assert_eq!(cfg.crash_retries, 3);

        // Hang chaos without a watchdog would wedge a worker forever.
        let cfg = ServeConfig::default().chaos(ChaosConfig::none().hang_on_seed(7, 1));
        assert!(matches!(
            cfg.validate(),
            Err(ServeError::InvalidConfig { .. })
        ));
        let cfg = ServeConfig::default()
            .watchdog(Duration::from_millis(50))
            .chaos(ChaosConfig::none().hang_on_seed(7, 1));
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn warm_start_policies_are_vetted() {
        // Default stays cold, and multigrid is an accepted policy.
        assert_eq!(ServeConfig::default().warm_start, WarmStart::Cold);
        let cfg = ServeConfig::default().multigrid(2, 1e-3);
        assert!(cfg.validate().is_ok());
        assert_eq!(
            cfg.warm_start,
            WarmStart::Multigrid {
                levels: 2,
                coarse_tol: 1e-3
            }
        );
        // Chained couples windows across the coalescing boundary.
        let cfg = ServeConfig::default().warm_start(WarmStart::Chained { chunk: 4 });
        assert!(matches!(
            cfg.validate(),
            Err(ServeError::InvalidConfig { .. })
        ));
        // Degenerate coarse tolerances are caught at config time.
        for tol in [0.0, -1.0, f64::NAN] {
            let cfg = ServeConfig::default().multigrid(1, tol);
            assert!(matches!(
                cfg.validate(),
                Err(ServeError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn brownout_hysteresis_bands_are_enforced() {
        assert!(BrownoutPolicy::default().validate().is_ok());
        let bad = [
            BrownoutPolicy {
                exit: 0.9,
                enter: 0.5,
                ..BrownoutPolicy::default()
            },
            BrownoutPolicy {
                enter: 2.0,
                shed_enter: 1.0,
                shed_exit: 0.5,
                ..BrownoutPolicy::default()
            },
            BrownoutPolicy {
                shed_exit: 5.0,
                ..BrownoutPolicy::default()
            },
            BrownoutPolicy {
                retry_weight: -1.0,
                ..BrownoutPolicy::default()
            },
            BrownoutPolicy {
                enter: f64::NAN,
                ..BrownoutPolicy::default()
            },
            BrownoutPolicy {
                tick: Duration::ZERO,
                ..BrownoutPolicy::default()
            },
        ];
        for policy in bad {
            assert!(
                matches!(policy.validate(), Err(ServeError::InvalidConfig { .. })),
                "policy should be rejected: {policy:?}"
            );
        }
    }
}
