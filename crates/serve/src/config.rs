//! Service configuration: worker pool size, coalescing, admission, SLO.

use dsgl_ising::fault::FaultModel;
use std::time::Duration;

use crate::ServeError;

/// Tuning knobs for a [`ForecastService`](crate::ForecastService).
///
/// The defaults serve correctly out of the box: one worker, batches of
/// up to 8 coalesced requests, a 64-deep admission queue, a 200 µs
/// batch-forming linger, no deadline (never degrade on latency), and a
/// fault-free substrate. None of these knobs can change forecast bits —
/// they only move latency, throughput, and shed/degrade behaviour.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads pulling batches off the queue (each owns a
    /// pooled machine/workspace pair).
    pub workers: usize,
    /// Maximum requests coalesced into one batched inference call.
    pub coalesce: usize,
    /// Admission-queue depth; a full queue rejects new requests with
    /// [`ServeError::Overloaded`] instead of growing a backlog.
    pub queue_capacity: usize,
    /// How long a worker lingers for a partial batch to fill before
    /// running it. Grouping never changes bits, so this only trades a
    /// bounded latency bump for wider batches.
    pub linger: Duration,
    /// Optional SLO deadline measured from admission. A request still
    /// queued past its deadline is answered with the sanitised
    /// persistence fallback (degraded, finite, instant) instead of
    /// annealing even later. `None` disables SLO degradation.
    pub deadline: Option<Duration>,
    /// Fault model injected into every pooled forecaster (for chaos
    /// drills and the degradation test battery).
    pub faults: FaultModel,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 1,
            coalesce: 8,
            queue_capacity: 64,
            linger: Duration::from_micros(200),
            deadline: None,
            faults: FaultModel::none(),
        }
    }
}

impl ServeConfig {
    /// Sets the worker-thread count (≥ 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the maximum coalesced batch width (≥ 1).
    pub fn coalesce(mut self, width: usize) -> Self {
        self.coalesce = width;
        self
    }

    /// Sets the admission-queue capacity (≥ 1).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the batch-forming linger.
    pub fn linger(mut self, linger: Duration) -> Self {
        self.linger = linger;
        self
    }

    /// Sets the SLO deadline (measured from admission).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Injects a fault model into the pooled forecasters.
    pub fn faults(mut self, faults: FaultModel) -> Self {
        self.faults = faults;
        self
    }

    /// Rejects configurations the service cannot run.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] on a zero worker count, zero
    /// coalesce width, or zero queue capacity.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "worker count must be at least 1".to_owned(),
            });
        }
        if self.coalesce == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "coalesce width must be at least 1".to_owned(),
            });
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "queue capacity must be at least 1".to_owned(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate_and_builders_chain() {
        let cfg = ServeConfig::default();
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.coalesce, 8);
        assert!(cfg.deadline.is_none());

        let cfg = ServeConfig::default()
            .workers(4)
            .coalesce(16)
            .queue_capacity(2)
            .linger(Duration::from_millis(1))
            .deadline(Duration::from_millis(50));
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.coalesce, 16);
        assert_eq!(cfg.queue_capacity, 2);
        assert_eq!(cfg.deadline, Some(Duration::from_millis(50)));
    }

    #[test]
    fn zero_knobs_are_rejected() {
        for cfg in [
            ServeConfig::default().workers(0),
            ServeConfig::default().coalesce(0),
            ServeConfig::default().queue_capacity(0),
        ] {
            assert!(matches!(
                cfg.validate(),
                Err(ServeError::InvalidConfig { .. })
            ));
        }
    }
}
