//! Supervision primitives: per-worker watchdog slots and the brownout
//! tier state machine.
//!
//! The supervisor heartbeat thread (spawned by
//! [`ForecastService`](crate::ForecastService) when a watchdog or a
//! brownout policy is configured) ticks over two jobs:
//!
//! - **Watchdog**: every worker publishes its in-flight batch into a
//!   [`WorkerSlot`] (start instant + that batch's
//!   [`CancelToken`](dsgl_ising::CancelToken)). A batch older than the
//!   watchdog deadline gets its token fired; the integrator bails at
//!   its next step and the worker re-enqueues or falls back the
//!   cancelled requests.
//! - **Brownout**: a health score is computed from live service state
//!   (queue fill, guard retry rate, recent crashes) and run through
//!   [`next_tier`]'s hysteresis bands to decide the admission tier.
//!
//! Both jobs are deliberately decoupled from the telemetry sink: they
//! read dedicated atomics maintained by the serving path, so
//! supervision works identically under a noop sink.
//!
//! Every supervision edge also lands in the service's black-box
//! [`FlightRecorder`](dsgl_core::FlightRecorder): a fired watchdog
//! records a `watchdog.cancel` event and a tier change records a
//! `brownout.transition` event (with the driving health score), so a
//! post-mortem [`flight_dump`](crate::ForecastService::flight_dump)
//! shows *when* supervision acted, not just the counters saying that it
//! did.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use dsgl_ising::CancelToken;

use crate::config::BrownoutPolicy;

/// Admission is unrestricted.
pub const TIER_NORMAL: u8 = 0;
/// Coalesce-only admission with a shortened deadline.
pub const TIER_BROWNOUT: u8 = 1;
/// Nothing is admitted.
pub const TIER_SHED: u8 = 2;

/// One worker's published in-flight batch, watched by the supervisor.
///
/// `None` between batches. The worker publishes on batch start and
/// clears on batch end; the supervisor only ever *fires the token* — it
/// never clears the slot, so a slow clear can at worst cancel a batch
/// that was about to finish anyway (the worker's response path then
/// treats it as cancelled, which is safe: requeue re-runs bit-identical
/// work).
#[derive(Debug, Default)]
pub struct WorkerSlot {
    busy: Mutex<Option<(Instant, CancelToken)>>,
}

impl WorkerSlot {
    /// A vacant slot.
    pub fn new() -> Self {
        WorkerSlot::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Option<(Instant, CancelToken)>> {
        self.busy.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Publishes a batch the worker is starting now.
    pub fn begin(&self, token: CancelToken) {
        *self.lock() = Some((Instant::now(), token));
    }

    /// Clears the slot after the batch (served, cancelled, or panicked
    /// — the panic handler clears too, so a respawned worker starts
    /// from a vacant slot).
    pub fn clear(&self) {
        *self.lock() = None;
    }

    /// Fires the token of a batch older than `deadline`. Returns `true`
    /// only on the tick that actually transitions the token to
    /// cancelled, so callers can count distinct cancellations.
    pub fn cancel_if_overdue(&self, deadline: Duration) -> bool {
        let guard = self.lock();
        if let Some((since, token)) = guard.as_ref() {
            if since.elapsed() >= deadline && !token.is_cancelled() {
                token.cancel();
                return true;
            }
        }
        false
    }
}

/// Inputs to one brownout health-score evaluation, all deltas since the
/// previous supervisor tick (except queue fill, which is instantaneous).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthInputs {
    /// Queue depth / queue capacity, in `[0, 1]`.
    pub queue_fill: f64,
    /// Guard retries since the last tick.
    pub retries: u64,
    /// Windows served since the last tick.
    pub runs: u64,
    /// Worker crashes since the last tick.
    pub crashes: u64,
}

/// The brownout health score: queue fill plus weighted retry rate plus
/// weighted recent crashes (capped at 2 so one bad tick cannot saturate
/// the score forever). Higher is sicker; the tier bands of
/// [`BrownoutPolicy`] interpret it.
pub fn health_score(inputs: &HealthInputs, policy: &BrownoutPolicy) -> f64 {
    let retry_rate = inputs.retries as f64 / inputs.runs.max(1) as f64;
    let crash_load = (inputs.crashes as f64).min(2.0);
    inputs.queue_fill + policy.retry_weight * retry_rate + policy.crash_weight * crash_load
}

/// The tier state machine with hysteresis: escalation uses the `enter`
/// thresholds, de-escalation the (lower) `exit` thresholds, so a score
/// hovering at a boundary cannot flap the tier every tick.
pub fn next_tier(score: f64, current: u8, policy: &BrownoutPolicy) -> u8 {
    match current {
        TIER_NORMAL => {
            if score >= policy.shed_enter {
                TIER_SHED
            } else if score >= policy.enter {
                TIER_BROWNOUT
            } else {
                TIER_NORMAL
            }
        }
        TIER_BROWNOUT => {
            if score >= policy.shed_enter {
                TIER_SHED
            } else if score <= policy.exit {
                TIER_NORMAL
            } else {
                TIER_BROWNOUT
            }
        }
        _ => {
            if score > policy.shed_exit {
                TIER_SHED
            } else if score <= policy.exit {
                TIER_NORMAL
            } else {
                TIER_BROWNOUT
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BrownoutPolicy {
        BrownoutPolicy::default() // enter .75 / exit .4 / shed 1.5 / shed_exit .9
    }

    #[test]
    fn tiers_escalate_and_recover_with_hysteresis() {
        let p = policy();
        // Escalation path.
        assert_eq!(next_tier(0.2, TIER_NORMAL, &p), TIER_NORMAL);
        assert_eq!(next_tier(0.8, TIER_NORMAL, &p), TIER_BROWNOUT);
        assert_eq!(next_tier(2.0, TIER_NORMAL, &p), TIER_SHED);
        assert_eq!(next_tier(2.0, TIER_BROWNOUT, &p), TIER_SHED);
        // Hysteresis: between exit and enter, brownout holds.
        assert_eq!(next_tier(0.6, TIER_BROWNOUT, &p), TIER_BROWNOUT);
        assert_eq!(next_tier(0.6, TIER_NORMAL, &p), TIER_NORMAL);
        // Recovery path.
        assert_eq!(next_tier(0.3, TIER_BROWNOUT, &p), TIER_NORMAL);
        // Shed holds above shed_exit, steps down to brownout in the
        // band, and straight to normal below exit.
        assert_eq!(next_tier(1.2, TIER_SHED, &p), TIER_SHED);
        assert_eq!(next_tier(0.85, TIER_SHED, &p), TIER_BROWNOUT);
        assert_eq!(next_tier(0.1, TIER_SHED, &p), TIER_NORMAL);
    }

    #[test]
    fn score_combines_fill_retries_and_crashes() {
        let p = policy(); // retry_weight 1.0, crash_weight 0.5
        let calm = HealthInputs {
            queue_fill: 0.25,
            retries: 0,
            runs: 10,
            crashes: 0,
        };
        assert!((health_score(&calm, &p) - 0.25).abs() < 1e-12);
        let retrying = HealthInputs {
            retries: 5,
            ..calm
        };
        assert!((health_score(&retrying, &p) - 0.75).abs() < 1e-12);
        // Crashes cap at 2 regardless of how many happened in a tick.
        let crashing = HealthInputs {
            crashes: 50,
            ..calm
        };
        assert!((health_score(&crashing, &p) - 1.25).abs() < 1e-12);
        // Zero runs never divides by zero.
        let idle = HealthInputs {
            queue_fill: 0.0,
            retries: 3,
            runs: 0,
            crashes: 0,
        };
        assert!(health_score(&idle, &p).is_finite());
    }

    #[test]
    fn slot_cancels_only_overdue_batches_exactly_once() {
        let slot = WorkerSlot::new();
        // Vacant: nothing to cancel.
        assert!(!slot.cancel_if_overdue(Duration::ZERO));
        let token = CancelToken::new();
        slot.begin(token.clone());
        // Fresh batch, generous deadline: not overdue.
        assert!(!slot.cancel_if_overdue(Duration::from_secs(3600)));
        assert!(!token.is_cancelled());
        // Zero deadline: overdue immediately, cancelled exactly once.
        assert!(slot.cancel_if_overdue(Duration::ZERO));
        assert!(token.is_cancelled());
        assert!(!slot.cancel_if_overdue(Duration::ZERO), "second tick must not re-count");
        slot.clear();
        assert!(!slot.cancel_if_overdue(Duration::ZERO));
    }
}
