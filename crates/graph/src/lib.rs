//! Graph substrate for the DS-GL framework.
//!
//! This crate provides the graph machinery that the DS-GL decomposition
//! pipeline (paper Sec. IV.B) is built on:
//!
//! - [`CsrGraph`]: a compact, weighted, undirected graph in compressed
//!   sparse row form, the common currency of every other crate;
//! - [`builder::GraphBuilder`]: incremental, deduplicating construction;
//! - [`generators`]: deterministic random-graph generators (stochastic block
//!   model, random geometric, Erdős–Rényi, grids, rings) used by the
//!   synthetic datasets;
//! - [`louvain`]: the Louvain community-detection algorithm the paper adopts
//!   for extracting communities from pruned coupling matrices;
//! - [`partition`]: grouping of communities into per-PE "super-communities"
//!   with capacity limits and locality-aware redistribution (paper Fig. 5/6);
//! - [`coarsen`]: deterministic multigrid coarsening — community
//!   partitions as explicit restriction/prolongation operators plus
//!   aggregated coarse graphs, the grid-transfer layer of the multigrid
//!   annealing pipeline.
//!
//! # Example
//!
//! ```
//! use dsgl_graph::{generators, louvain::Louvain};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let g = generators::stochastic_block_model(&[30, 30, 30], 0.3, 0.01, &mut rng);
//! let communities = Louvain::new().run(&g, &mut rng);
//! assert!(communities.count() >= 3);
//! ```

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![warn(missing_docs)]

pub mod builder;
pub mod coarsen;
pub mod community;
pub mod csr;
pub mod error;
pub mod generators;
pub mod louvain;
pub mod metrics;
pub mod modularity;
pub mod partition;

pub use builder::GraphBuilder;
pub use coarsen::{louvain_coarsening, louvain_hierarchy, Coarsening};
pub use community::Communities;
pub use csr::CsrGraph;
pub use error::GraphError;
pub use louvain::Louvain;
pub use partition::{Partitioner, Placement};
