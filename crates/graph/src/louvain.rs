//! The Louvain community-detection algorithm.
//!
//! DS-GL adopts Louvain (paper Sec. IV.B, citing Blondel et al. 2008) to
//! extract communities from the pruned coupling matrix before mapping them
//! onto PEs. This implementation follows the classic two-phase scheme:
//! local moving until no gain, then graph aggregation, repeated until the
//! partition stabilises.

use crate::community::Communities;
use crate::csr::CsrGraph;
use crate::modularity::modularity;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeMap;

/// Configurable Louvain runner.
///
/// # Example
///
/// ```
/// use dsgl_graph::{generators, Louvain};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// let g = generators::stochastic_block_model(&[25, 25, 25], 0.4, 0.005, &mut rng);
/// let comms = Louvain::new().run(&g, &mut rng);
/// assert!(comms.count() >= 3 && comms.count() <= 10);
/// ```
#[derive(Debug, Clone)]
pub struct Louvain {
    min_gain: f64,
    max_levels: usize,
    max_sweeps: usize,
    resolution: f64,
}

impl Louvain {
    /// Creates a runner with default thresholds (gain `1e-9`, 16 levels,
    /// 64 local-move sweeps per level).
    pub fn new() -> Self {
        Louvain {
            min_gain: 1e-9,
            max_levels: 16,
            max_sweeps: 64,
            resolution: 1.0,
        }
    }

    /// Sets the resolution parameter `γ` (Reichardt–Bornholdt): values
    /// above 1 favour more, smaller communities; below 1, fewer, larger
    /// ones. Useful for matching community sizes to a PE capacity.
    ///
    /// # Panics
    ///
    /// Panics unless `γ` is finite and positive.
    pub fn resolution(mut self, gamma: f64) -> Self {
        assert!(gamma.is_finite() && gamma > 0.0, "resolution must be positive");
        self.resolution = gamma;
        self
    }

    /// Minimum modularity gain for a node move to be accepted.
    pub fn min_gain(mut self, g: f64) -> Self {
        self.min_gain = g;
        self
    }

    /// Maximum number of aggregation levels.
    pub fn max_levels(mut self, l: usize) -> Self {
        self.max_levels = l.max(1);
        self
    }

    /// Maximum local-move sweeps per level. Lower values trade partition
    /// quality for speed — useful when Louvain runs inside a latency
    /// budget (e.g. as the multigrid coarsener on 100k+ node graphs).
    pub fn max_sweeps(mut self, s: usize) -> Self {
        self.max_sweeps = s.max(1);
        self
    }

    /// Runs Louvain on `graph`, shuffling node visit order with `rng`.
    ///
    /// Edge weights must be non-negative (use `|J|` when clustering a
    /// coupling matrix). Returns the final flat partition.
    pub fn run<R: Rng + ?Sized>(&self, graph: &CsrGraph, rng: &mut R) -> Communities {
        let mut partition = Communities::singletons(graph.node_count());
        if graph.node_count() == 0 {
            return partition;
        }
        let mut level_graph = graph.clone();
        for _ in 0..self.max_levels {
            let (level_partition, moved) = self.local_moving(&level_graph, rng);
            if !moved {
                break;
            }
            partition = partition.compose(&level_partition);
            level_graph = aggregate(&level_graph, &level_partition);
            if level_partition.count() == level_partition.node_count() {
                break;
            }
        }
        partition
    }

    /// Phase 1: move nodes between communities while modularity improves.
    /// Returns the partition of this level and whether any move happened.
    fn local_moving<R: Rng + ?Sized>(
        &self,
        graph: &CsrGraph,
        rng: &mut R,
    ) -> (Communities, bool) {
        let n = graph.node_count();
        let two_m: f64 = (0..n).map(|u| graph.weighted_degree(u)).sum();
        if two_m <= 0.0 {
            return (Communities::singletons(n), false);
        }
        let m = two_m / 2.0;
        let mut label: Vec<usize> = (0..n).collect();
        // Σ of weighted degrees per community.
        let mut tot: Vec<f64> = (0..n).map(|u| graph.weighted_degree(u)).collect();
        let mut order: Vec<usize> = (0..n).collect();
        let mut any_move = false;
        // Scratch accumulator for the weights from a node to each
        // neighbouring community: a stamped dense array instead of a
        // HashMap, so candidate enumeration never depends on hash
        // iteration order (the determinism contract of the multigrid
        // coarsener) and the inner loop stays allocation-free.
        let mut k_to = vec![0.0f64; n];
        let mut stamp = vec![0u64; n];
        let mut touched: Vec<usize> = Vec::new();
        let mut epoch = 0u64;

        for _ in 0..self.max_sweeps {
            order.shuffle(rng);
            let mut moved_this_sweep = false;
            for &u in &order {
                let ku = graph.weighted_degree(u);
                let cu = label[u];
                // Weights from u to each neighbouring community,
                // accumulated in the CSR's sorted neighbour order.
                epoch += 1;
                touched.clear();
                for (v, w) in graph.neighbors(u) {
                    if v != u {
                        let c = label[v];
                        if stamp[c] != epoch {
                            stamp[c] = epoch;
                            k_to[c] = 0.0;
                            touched.push(c);
                        }
                        k_to[c] += w;
                    }
                }
                // Remove u from its community for gain evaluation.
                tot[cu] -= ku;
                let k_cu = if stamp[cu] == epoch { k_to[cu] } else { 0.0 };
                let stay_gain = gain(k_cu, tot[cu], ku, m, self.resolution);
                let mut best_c = cu;
                let mut best_gain = stay_gain;
                // Candidates ascend by community id: seeded visit order
                // plus index-ordered tie-breaking is the whole of the
                // algorithm's nondeterminism surface.
                touched.sort_unstable();
                for &c in &touched {
                    if c == cu {
                        continue;
                    }
                    let g = gain(k_to[c], tot[c], ku, m, self.resolution);
                    if g > best_gain + self.min_gain {
                        best_gain = g;
                        best_c = c;
                    }
                }
                tot[best_c] += ku;
                if best_c != cu {
                    label[u] = best_c;
                    moved_this_sweep = true;
                    any_move = true;
                }
            }
            if !moved_this_sweep {
                break;
            }
        }
        (Communities::from_assignment(label), any_move)
    }
}

impl Default for Louvain {
    fn default() -> Self {
        Louvain::new()
    }
}

/// Modularity gain (at resolution `γ`) of adding a node with degree `ku`
/// and `k_uc` links into community `c` with total degree `tot_c` (node
/// already removed).
fn gain(k_uc: f64, tot_c: f64, ku: f64, m: f64, gamma: f64) -> f64 {
    k_uc / m - gamma * tot_c * ku / (2.0 * m * m)
}

/// Phase 2: builds the aggregated community graph. Intra-community weight
/// becomes a self-loop; inter-community weights are summed. Community
/// labels are `< partition.count()` by construction, so aggregation is
/// infallible — merged weights accumulate in the graph's deterministic
/// `edges()` order.
fn aggregate(graph: &CsrGraph, partition: &Communities) -> CsrGraph {
    let mut merged: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    for (u, v, w) in graph.edges() {
        let (cu, cv) = (partition.label(u), partition.label(v));
        let key = if cu <= cv { (cu, cv) } else { (cv, cu) };
        *merged.entry(key).or_insert(0.0) += w;
    }
    let pairs = merged.into_iter().flat_map(|((u, v), w)| {
        if u == v {
            vec![(u, v, w)]
        } else {
            vec![(u, v, w), (v, u, w)]
        }
    });
    CsrGraph::from_directed_pairs(partition.count(), pairs)
}

/// Runs Louvain and reports `(partition, modularity)` in one call.
pub fn detect_communities<R: Rng + ?Sized>(
    graph: &CsrGraph,
    rng: &mut R,
) -> (Communities, f64) {
    let partition = Louvain::new().run(graph, rng);
    let q = modularity(graph, &partition);
    (partition, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn two_cliques_split() {
        // Two 5-cliques joined by one bridge.
        let mut edges = Vec::new();
        for u in 0..5 {
            for v in (u + 1)..5 {
                edges.push((u, v, 1.0));
                edges.push((u + 5, v + 5, 1.0));
            }
        }
        edges.push((4, 5, 1.0));
        let g = CsrGraph::from_edges(10, &edges).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let c = Louvain::new().run(&g, &mut rng);
        assert_eq!(c.count(), 2);
        for u in 0..5 {
            assert_eq!(c.label(u), c.label(0));
            assert_eq!(c.label(u + 5), c.label(5));
        }
        assert_ne!(c.label(0), c.label(5));
    }

    #[test]
    fn recovers_planted_blocks() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::stochastic_block_model(&[30, 30, 30, 30], 0.5, 0.01, &mut rng);
        let (c, q) = detect_communities(&g, &mut rng);
        assert!(q > 0.5, "modularity {q} too low");
        assert!((3..=8).contains(&c.count()), "found {} communities", c.count());
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(5);
        let mut rng = StdRng::seed_from_u64(0);
        let c = Louvain::new().run(&g, &mut rng);
        assert_eq!(c.count(), 5);
    }

    #[test]
    fn zero_nodes() {
        let g = CsrGraph::empty(0);
        let mut rng = StdRng::seed_from_u64(0);
        let c = Louvain::new().run(&g, &mut rng);
        assert_eq!(c.count(), 0);
    }

    #[test]
    fn improves_modularity_over_singletons() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::stochastic_block_model(&[20, 20], 0.6, 0.02, &mut rng);
        let singles = Communities::singletons(g.node_count());
        let (c, q) = detect_communities(&g, &mut rng);
        assert!(q > modularity(&g, &singles));
        assert!(c.count() < g.node_count());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::stochastic_block_model(&[15, 15], 0.5, 0.05, &mut rng);
        let c1 = Louvain::new().run(&g, &mut StdRng::seed_from_u64(77));
        let c2 = Louvain::new().run(&g, &mut StdRng::seed_from_u64(77));
        assert_eq!(c1, c2);
    }

    #[test]
    fn higher_resolution_yields_more_communities() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = generators::stochastic_block_model(&[20, 20, 20], 0.5, 0.05, &mut rng);
        let coarse = Louvain::new()
            .resolution(0.2)
            .run(&g, &mut StdRng::seed_from_u64(1));
        let fine = Louvain::new()
            .resolution(4.0)
            .run(&g, &mut StdRng::seed_from_u64(1));
        assert!(
            fine.count() >= coarse.count(),
            "γ=4 gave {} vs γ=0.2 gave {}",
            fine.count(),
            coarse.count()
        );
    }

    #[test]
    #[should_panic(expected = "resolution must be positive")]
    fn bad_resolution_panics() {
        Louvain::new().resolution(0.0);
    }

    #[test]
    fn aggregate_preserves_total_weight() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 2.0), (1, 2, 3.0), (2, 3, 4.0)]).unwrap();
        let p = Communities::from_assignment(vec![0, 0, 1, 1]);
        let agg = aggregate(&g, &p);
        assert_eq!(agg.node_count(), 2);
        assert!((agg.total_weight() - g.total_weight()).abs() < 1e-12);
        assert_eq!(agg.edge_weight(0, 0), Some(2.0)); // intra 0-1
        assert_eq!(agg.edge_weight(0, 1), Some(3.0)); // bridge
        assert_eq!(agg.edge_weight(1, 1), Some(4.0)); // intra 2-3
    }
}
