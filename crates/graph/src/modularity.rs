//! Newman modularity of a community partition.

use crate::community::Communities;
use crate::csr::CsrGraph;

/// Computes the (weighted) Newman modularity
/// `Q = (1/2m) * Σ_ij [A_ij - k_i k_j / 2m] δ(c_i, c_j)`.
///
/// Self-loops contribute to both edge weight and degrees with the standard
/// convention (a self-loop of weight `w` adds `2w` to its node's degree).
/// Returns `0.0` for graphs with no edges.
///
/// # Panics
///
/// Panics if `communities` does not cover exactly the graph's nodes.
///
/// # Example
///
/// ```
/// use dsgl_graph::{CsrGraph, Communities, modularity::modularity};
///
/// // Two disjoint triangles, perfectly split: Q = 1/2.
/// let g = CsrGraph::from_edges(6, &[
///     (0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0),
///     (3, 4, 1.0), (4, 5, 1.0), (3, 5, 1.0),
/// ]).unwrap();
/// let c = Communities::from_assignment(vec![0, 0, 0, 1, 1, 1]);
/// assert!((modularity(&g, &c) - 0.5).abs() < 1e-12);
/// ```
pub fn modularity(graph: &CsrGraph, communities: &Communities) -> f64 {
    assert_eq!(
        communities.node_count(),
        graph.node_count(),
        "partition must cover the graph"
    );
    let two_m: f64 = (0..graph.node_count())
        .map(|u| graph.weighted_degree(u))
        .sum();
    if two_m <= 0.0 {
        return 0.0;
    }
    let nc = communities.count();
    // Sum of intra-community edge weights (directed double-count) and of
    // community degrees.
    let mut intra = vec![0.0; nc];
    let mut degree = vec![0.0; nc];
    for u in 0..graph.node_count() {
        let cu = communities.label(u);
        degree[cu] += graph.weighted_degree(u);
        for (v, w) in graph.neighbors(u) {
            if communities.label(v) == cu {
                // Both directions of an undirected edge are visited, which
                // is the `Σ_ij A_ij` double-count; a self-loop entry appears
                // once and counts A_ii = 2w.
                intra[cu] += if v == u { 2.0 * w } else { w };
            }
        }
    }
    (0..nc)
        .map(|c| intra[c] / two_m - (degree[c] / two_m).powi(2))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_community_zero() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]).unwrap();
        let c = Communities::from_assignment(vec![0, 0, 0]);
        assert!(modularity(&g, &c).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_zero() {
        let g = CsrGraph::empty(4);
        let c = Communities::singletons(4);
        assert_eq!(modularity(&g, &c), 0.0);
    }

    #[test]
    fn split_triangles() {
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (3, 5, 1.0),
            ],
        )
        .unwrap();
        let good = Communities::from_assignment(vec![0, 0, 0, 1, 1, 1]);
        let bad = Communities::from_assignment(vec![0, 1, 0, 1, 0, 1]);
        assert!(modularity(&g, &good) > modularity(&g, &bad));
        assert!((modularity(&g, &good) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_edges_matter() {
        // Heavy edge inside community 0, light bridge.
        let g = CsrGraph::from_edges(4, &[(0, 1, 10.0), (1, 2, 0.1), (2, 3, 10.0)]).unwrap();
        let aligned = Communities::from_assignment(vec![0, 0, 1, 1]);
        let misaligned = Communities::from_assignment(vec![0, 1, 0, 1]);
        assert!(modularity(&g, &aligned) > modularity(&g, &misaligned));
    }

    #[test]
    #[should_panic(expected = "partition must cover")]
    fn size_mismatch_panics() {
        let g = CsrGraph::empty(3);
        let c = Communities::singletons(2);
        modularity(&g, &c);
    }
}
