//! Deterministic multigrid coarsening: community partitions as explicit
//! restriction/prolongation operators.
//!
//! The multigrid annealing pipeline (DESIGN "Multi-resolution annealing")
//! solves a cheap coarse problem first and prolongs its equilibrium to
//! the fine level as a warm start. This module supplies the grid-transfer
//! machinery: a [`Coarsening`] wraps a community assignment and exposes
//!
//! - **restriction** — fine-level vectors aggregated per block, either
//!   summed ([`Coarsening::restrict_sum`], the right rule for additive
//!   quantities like self-reaction fields `h`) or averaged
//!   ([`Coarsening::restrict_mean`], the right rule for intensive
//!   quantities like node voltages);
//! - **prolongation** — coarse-level vectors injected back piecewise
//!   constant ([`Coarsening::prolong`]);
//! - **graph aggregation** — the coarse graph whose super-node couplings
//!   are the summed block couplings ([`Coarsening::coarse_graph`]), with
//!   intra-block weight kept as a self-loop.
//!
//! Everything here is a pure function of its inputs: block indices come
//! from [`Communities::from_assignment`]'s first-appearance renumbering,
//! aggregation accumulates in fine-index order, and the seeded helpers
//! ([`louvain_coarsening`], [`louvain_hierarchy`]) drive Louvain from an
//! explicit seed — so a coarsening is reproducible bit-for-bit across
//! reruns, platforms, and thread counts.

use crate::community::Communities;
use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::louvain::Louvain;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// A fine→coarse grid transfer derived from a community partition.
///
/// # Example
///
/// ```
/// use dsgl_graph::{Coarsening, Communities};
///
/// let comms = Communities::from_assignment(vec![0, 0, 1, 1, 1]);
/// let c = Coarsening::from_communities(&comms);
/// assert_eq!(c.coarse_count(), 2);
/// let sums = c.restrict_sum(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
/// assert_eq!(sums, vec![3.0, 12.0]);
/// let back = c.prolong(&[0.5, -0.5]).unwrap();
/// assert_eq!(back, vec![0.5, 0.5, -0.5, -0.5, -0.5]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coarsening {
    /// Fine node → coarse block (compact, first-appearance order).
    assignment: Vec<usize>,
    /// Fine nodes per coarse block.
    counts: Vec<usize>,
}

impl Coarsening {
    /// Builds the transfer operators from a community partition.
    pub fn from_communities(communities: &Communities) -> Self {
        let assignment = communities.labels().to_vec();
        let mut counts = vec![0usize; communities.count()];
        for &c in &assignment {
            counts[c] += 1;
        }
        Coarsening { assignment, counts }
    }

    /// Number of fine-level nodes.
    pub fn fine_count(&self) -> usize {
        self.assignment.len()
    }

    /// Number of coarse-level blocks.
    pub fn coarse_count(&self) -> usize {
        self.counts.len()
    }

    /// The coarse block containing fine node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= fine_count()`.
    pub fn block_of(&self, i: usize) -> usize {
        self.assignment[i]
    }

    /// Number of fine nodes in coarse block `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= coarse_count()`.
    pub fn block_size(&self, c: usize) -> usize {
        self.counts[c]
    }

    /// The full fine→coarse assignment.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Whether this coarsening does not reduce the problem (every block
    /// is a singleton, or there is at most one block for 2+ nodes would
    /// still reduce — only the singleton case is trivial).
    pub fn is_trivial(&self) -> bool {
        self.coarse_count() == self.fine_count()
    }

    /// Restriction by block sums: `coarse[A] = Σ_{i ∈ A} fine[i]`,
    /// accumulated in ascending fine-index order (deterministic bits).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DimensionMismatch`] when
    /// `fine.len() != fine_count()`.
    pub fn restrict_sum(&self, fine: &[f64]) -> Result<Vec<f64>, GraphError> {
        if fine.len() != self.fine_count() {
            return Err(GraphError::DimensionMismatch {
                what: "fine vector",
                expected: self.fine_count(),
                actual: fine.len(),
            });
        }
        let mut coarse = vec![0.0; self.coarse_count()];
        for (i, &v) in fine.iter().enumerate() {
            coarse[self.assignment[i]] += v;
        }
        Ok(coarse)
    }

    /// Restriction by block means: `coarse[A] = (Σ_{i ∈ A} fine[i]) / |A|`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DimensionMismatch`] when
    /// `fine.len() != fine_count()`.
    pub fn restrict_mean(&self, fine: &[f64]) -> Result<Vec<f64>, GraphError> {
        let mut coarse = self.restrict_sum(fine)?;
        for (v, &count) in coarse.iter_mut().zip(&self.counts) {
            if count > 0 {
                *v /= count as f64;
            }
        }
        Ok(coarse)
    }

    /// Prolongation by piecewise-constant injection:
    /// `fine[i] = coarse[block_of(i)]`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DimensionMismatch`] when
    /// `coarse.len() != coarse_count()`.
    pub fn prolong(&self, coarse: &[f64]) -> Result<Vec<f64>, GraphError> {
        if coarse.len() != self.coarse_count() {
            return Err(GraphError::DimensionMismatch {
                what: "coarse vector",
                expected: self.coarse_count(),
                actual: coarse.len(),
            });
        }
        Ok(self.assignment.iter().map(|&c| coarse[c]).collect())
    }

    /// The aggregated coarse graph: super-node couplings are the summed
    /// block couplings (`J̃_AB = Σ_{i∈A, j∈B} w_ij` over undirected fine
    /// edges), and intra-block weight is kept as a self-loop on the
    /// super-node. Weights may be signed; accumulation order is the
    /// graph's deterministic `edges()` order.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DimensionMismatch`] when
    /// `graph.node_count() != fine_count()`.
    pub fn coarse_graph(&self, graph: &CsrGraph) -> Result<CsrGraph, GraphError> {
        if graph.node_count() != self.fine_count() {
            return Err(GraphError::DimensionMismatch {
                what: "fine graph",
                expected: self.fine_count(),
                actual: graph.node_count(),
            });
        }
        let mut merged: BTreeMap<(usize, usize), f64> = BTreeMap::new();
        for (u, v, w) in graph.edges() {
            let (cu, cv) = (self.assignment[u], self.assignment[v]);
            let key = if cu <= cv { (cu, cv) } else { (cv, cu) };
            *merged.entry(key).or_insert(0.0) += w;
        }
        let pairs = merged.into_iter().flat_map(|((u, v), w)| {
            if u == v {
                vec![(u, v, w)]
            } else {
                vec![(u, v, w), (v, u, w)]
            }
        });
        Ok(CsrGraph::from_directed_pairs(self.coarse_count(), pairs))
    }
}

/// One seeded Louvain coarsening level: runs [`Louvain`] on `graph` with
/// an [`rand::rngs::StdRng`] built from `seed` and wraps the partition.
/// Edge weights must be non-negative (cluster `|J|` when coarsening a
/// coupling matrix). Pure in `(graph, seed, louvain)` — the visit-order
/// shuffle is the only randomness and it is fully seeded.
pub fn louvain_coarsening(graph: &CsrGraph, seed: u64, louvain: &Louvain) -> Coarsening {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Coarsening::from_communities(&louvain.run(graph, &mut rng))
}

/// A multigrid hierarchy: up to `levels` successive seeded Louvain
/// coarsenings, each applied to the previous level's aggregated graph
/// (level seeds are derived as `seed + level`). Stops early when a level
/// no longer reduces the node count. Returns `(coarsening, coarse
/// graph)` pairs ordered fine→coarse.
pub fn louvain_hierarchy(
    graph: &CsrGraph,
    levels: usize,
    seed: u64,
    louvain: &Louvain,
) -> Vec<(Coarsening, CsrGraph)> {
    let mut out = Vec::new();
    let mut level_graph = graph.clone();
    for level in 0..levels {
        let coarsening = louvain_coarsening(&level_graph, seed.wrapping_add(level as u64), louvain);
        if coarsening.is_trivial() || coarsening.coarse_count() == 0 {
            break;
        }
        let coarse = coarsening
            .coarse_graph(&level_graph)
            .expect("coarsening was built from this graph");
        let reduced = coarsening.coarse_count() < coarsening.fine_count();
        out.push((coarsening, coarse.clone()));
        level_graph = coarse;
        if !reduced {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use proptest::prelude::*;
    use rand::rngs::StdRng;

    fn coarsening(assignment: Vec<usize>) -> Coarsening {
        Coarsening::from_communities(&Communities::from_assignment(assignment))
    }

    #[test]
    fn counts_and_blocks() {
        let c = coarsening(vec![0, 0, 1, 2, 1]);
        assert_eq!(c.fine_count(), 5);
        assert_eq!(c.coarse_count(), 3);
        assert_eq!(c.block_of(4), 1);
        assert_eq!(c.block_size(0), 2);
        assert_eq!(c.block_size(1), 2);
        assert_eq!(c.block_size(2), 1);
        assert!(!c.is_trivial());
        assert!(coarsening(vec![0, 1, 2]).is_trivial());
    }

    #[test]
    fn restriction_rules() {
        let c = coarsening(vec![0, 1, 0, 1]);
        let sums = c.restrict_sum(&[1.0, 10.0, 3.0, 30.0]).unwrap();
        assert_eq!(sums, vec![4.0, 40.0]);
        let means = c.restrict_mean(&[1.0, 10.0, 3.0, 30.0]).unwrap();
        assert_eq!(means, vec![2.0, 20.0]);
    }

    #[test]
    fn dimension_mismatches_are_typed() {
        let c = coarsening(vec![0, 0, 1]);
        assert!(matches!(
            c.restrict_sum(&[1.0]),
            Err(GraphError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            c.prolong(&[1.0, 2.0, 3.0]),
            Err(GraphError::DimensionMismatch { .. })
        ));
        let g = CsrGraph::empty(7);
        assert!(matches!(
            c.coarse_graph(&g),
            Err(GraphError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn coarse_graph_aggregates_blocks() {
        // 0-1 intra(A), 1-2 bridge(A-B), 2-3 intra(B), signed weights.
        let g = CsrGraph::from_edges(4, &[(0, 1, 2.0), (1, 2, -3.0), (2, 3, 4.0)]).unwrap();
        let c = coarsening(vec![0, 0, 1, 1]);
        let agg = c.coarse_graph(&g).unwrap();
        assert_eq!(agg.node_count(), 2);
        assert_eq!(agg.edge_weight(0, 0), Some(2.0));
        assert_eq!(agg.edge_weight(0, 1), Some(-3.0));
        assert_eq!(agg.edge_weight(1, 1), Some(4.0));
        assert!((agg.total_weight() - g.total_weight()).abs() < 1e-12);
    }

    #[test]
    fn seeded_coarsening_is_reproducible() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::stochastic_block_model(&[20, 20, 20], 0.5, 0.02, &mut rng);
        let a = louvain_coarsening(&g, 17, &Louvain::new());
        let b = louvain_coarsening(&g, 17, &Louvain::new());
        assert_eq!(a, b);
        assert!(a.coarse_count() < g.node_count());
    }

    #[test]
    fn hierarchy_shrinks_monotonically() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::stochastic_block_model(&[25, 25, 25, 25], 0.4, 0.01, &mut rng);
        let levels = louvain_hierarchy(&g, 3, 5, &Louvain::new());
        assert!(!levels.is_empty());
        let mut prev = g.node_count();
        for (c, coarse) in &levels {
            assert_eq!(c.fine_count(), prev);
            assert!(c.coarse_count() <= prev);
            assert_eq!(coarse.node_count(), c.coarse_count());
            prev = c.coarse_count();
        }
    }

    #[test]
    fn empty_inputs() {
        let c = coarsening(vec![]);
        assert_eq!(c.fine_count(), 0);
        assert_eq!(c.coarse_count(), 0);
        assert_eq!(c.restrict_sum(&[]).unwrap(), Vec::<f64>::new());
        assert_eq!(c.prolong(&[]).unwrap(), Vec::<f64>::new());
        assert!(louvain_hierarchy(&CsrGraph::empty(0), 2, 0, &Louvain::new()).is_empty());
    }

    proptest! {
        /// prolong ∘ restrict_mean is the identity on piecewise-constant
        /// vectors, and restrict_sum of a prolonged vector recovers the
        /// block value scaled by the block size.
        #[test]
        fn prolong_restrict_round_trip(
            assignment in proptest::collection::vec(0usize..6, 32),
            len in 1usize..32,
            values in proptest::collection::vec(-1e3f64..1e3, 6),
        ) {
            let c = coarsening(assignment[..len].to_vec());
            let coarse: Vec<f64> = (0..c.coarse_count()).map(|a| values[a % values.len()]).collect();
            let fine = c.prolong(&coarse).unwrap();
            // Means of constant blocks are exact (sum of k copies of v
            // divides back to v up to fp round-off).
            let means = c.restrict_mean(&fine).unwrap();
            for (m, v) in means.iter().zip(&coarse) {
                prop_assert!((m - v).abs() <= 1e-12 * v.abs().max(1.0));
            }
            let sums = c.restrict_sum(&fine).unwrap();
            for (a, (s, v)) in sums.iter().zip(&coarse).enumerate() {
                let expect = c.block_size(a) as f64 * v;
                prop_assert!((s - expect).abs() <= 1e-12 * expect.abs().max(1.0));
            }
        }

        /// restrict_sum preserves the total mass of any fine vector.
        #[test]
        fn restriction_preserves_block_sums(
            assignment in proptest::collection::vec(0usize..5, 40),
            len in 1usize..40,
            fine in proptest::collection::vec(-1e3f64..1e3, 40),
        ) {
            let n = len;
            let c = coarsening(assignment[..len].to_vec());
            let coarse = c.restrict_sum(&fine[..n]).unwrap();
            let fine_total: f64 = fine[..n].iter().sum();
            let coarse_total: f64 = coarse.iter().sum();
            prop_assert!((fine_total - coarse_total).abs() <= 1e-9 * fine_total.abs().max(1.0));
        }

        /// Aggregated coarse graphs preserve total edge weight.
        #[test]
        fn coarse_graph_preserves_total_weight(
            seed in 0u64..1000,
            labels in proptest::collection::vec(0usize..4, 12),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::erdos_renyi(12, 0.4, &mut rng);
            let c = coarsening(labels);
            let agg = c.coarse_graph(&g).unwrap();
            prop_assert!((agg.total_weight() - g.total_weight()).abs() < 1e-9);
        }
    }
}
