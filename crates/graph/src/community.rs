//! Community assignments over a node set.

use serde::{Deserialize, Serialize};

/// A partition of nodes `0..n` into communities `0..count`.
///
/// Community labels are always compact (every label in `0..count` is used).
///
/// # Example
///
/// ```
/// use dsgl_graph::Communities;
///
/// let c = Communities::from_assignment(vec![0, 0, 1, 1, 1]);
/// assert_eq!(c.count(), 2);
/// assert_eq!(c.size(1), 3);
/// assert_eq!(c.members(0), &[0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Communities {
    assignment: Vec<usize>,
    members: Vec<Vec<usize>>,
}

impl Communities {
    /// Builds communities from a per-node label vector. Labels are
    /// renumbered to be compact, in order of first appearance.
    pub fn from_assignment(labels: Vec<usize>) -> Self {
        let mut remap: Vec<Option<usize>> = Vec::new();
        let mut assignment = Vec::with_capacity(labels.len());
        let mut members: Vec<Vec<usize>> = Vec::new();
        for (node, &label) in labels.iter().enumerate() {
            if label >= remap.len() {
                remap.resize(label + 1, None);
            }
            let compact = match remap[label] {
                Some(c) => c,
                None => {
                    let c = members.len();
                    remap[label] = Some(c);
                    members.push(Vec::new());
                    c
                }
            };
            assignment.push(compact);
            members[compact].push(node);
        }
        Communities { assignment, members }
    }

    /// One community per node (the trivial starting partition).
    pub fn singletons(n: usize) -> Self {
        Communities::from_assignment((0..n).collect())
    }

    /// Number of communities.
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.assignment.len()
    }

    /// Community label of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn label(&self, node: usize) -> usize {
        self.assignment[node]
    }

    /// The per-node label vector.
    pub fn labels(&self) -> &[usize] {
        &self.assignment
    }

    /// Members of community `c`, in ascending node order.
    ///
    /// # Panics
    ///
    /// Panics if `c >= count()`.
    pub fn members(&self, c: usize) -> &[usize] {
        &self.members[c]
    }

    /// Size of community `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= count()`.
    pub fn size(&self, c: usize) -> usize {
        self.members[c].len()
    }

    /// Community indices sorted by decreasing size (ties by index), the
    /// order in which the redistribution step considers them.
    pub fn by_decreasing_size(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.count()).collect();
        idx.sort_by_key(|&c| (std::cmp::Reverse(self.size(c)), c));
        idx
    }

    /// Composes this partition with a coarser partition of its communities:
    /// `coarser.label(c)` gives the new community of old community `c`.
    ///
    /// # Panics
    ///
    /// Panics if `coarser` does not cover exactly `self.count()` items.
    pub fn compose(&self, coarser: &Communities) -> Communities {
        assert_eq!(
            coarser.node_count(),
            self.count(),
            "coarser partition must cover the communities"
        );
        let labels = self
            .assignment
            .iter()
            .map(|&c| coarser.label(c))
            .collect();
        Communities::from_assignment(labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compacts_labels() {
        let c = Communities::from_assignment(vec![5, 5, 9, 2]);
        assert_eq!(c.count(), 3);
        assert_eq!(c.labels(), &[0, 0, 1, 2]);
    }

    #[test]
    fn singleton_partition() {
        let c = Communities::singletons(4);
        assert_eq!(c.count(), 4);
        for i in 0..4 {
            assert_eq!(c.label(i), i);
            assert_eq!(c.members(i), &[i]);
        }
    }

    #[test]
    fn members_and_sizes() {
        let c = Communities::from_assignment(vec![1, 0, 1, 1]);
        assert_eq!(c.members(0), &[0, 2, 3]);
        assert_eq!(c.members(1), &[1]);
        assert_eq!(c.size(0), 3);
    }

    #[test]
    fn decreasing_size_order() {
        let c = Communities::from_assignment(vec![0, 1, 1, 2, 2, 2]);
        assert_eq!(c.by_decreasing_size(), vec![2, 1, 0]);
    }

    #[test]
    fn compose_partitions() {
        let fine = Communities::from_assignment(vec![0, 0, 1, 2]);
        let coarse = Communities::from_assignment(vec![0, 0, 1]); // merge comms 0,1
        let merged = fine.compose(&coarse);
        assert_eq!(merged.count(), 2);
        assert_eq!(merged.labels(), &[0, 0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "coarser partition")]
    fn compose_size_mismatch() {
        let fine = Communities::from_assignment(vec![0, 1]);
        let coarse = Communities::from_assignment(vec![0]);
        fine.compose(&coarse);
    }
}
