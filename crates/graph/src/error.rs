//! Error type for graph construction and partitioning.

use std::error::Error;
use std::fmt;

/// Errors produced by graph construction, queries, and partitioning.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node index was out of range for the graph.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the graph.
        len: usize,
    },
    /// An edge list referenced a node beyond the declared node count.
    EdgeEndpointOutOfRange {
        /// The offending endpoint.
        node: usize,
        /// Declared node count.
        len: usize,
    },
    /// A self-loop was supplied where self-loops are not allowed.
    SelfLoop {
        /// The node carrying the self-loop.
        node: usize,
    },
    /// A partition request that cannot be satisfied.
    InfeasiblePartition {
        /// Human-readable reason.
        reason: String,
    },
    /// A vector or graph did not match the expected node/block count
    /// (grid-transfer operators are shape-checked, never truncated).
    DimensionMismatch {
        /// What was being supplied.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, len } => {
                write!(f, "node index {node} out of range for graph of {len} nodes")
            }
            GraphError::EdgeEndpointOutOfRange { node, len } => {
                write!(f, "edge endpoint {node} out of range for graph of {len} nodes")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop on node {node} is not allowed here")
            }
            GraphError::InfeasiblePartition { reason } => {
                write!(f, "infeasible partition: {reason}")
            }
            GraphError::DimensionMismatch {
                what,
                expected,
                actual,
            } => write!(f, "{what} has length {actual}, expected {expected}"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let variants = [
            GraphError::NodeOutOfRange { node: 3, len: 2 },
            GraphError::EdgeEndpointOutOfRange { node: 9, len: 4 },
            GraphError::SelfLoop { node: 1 },
            GraphError::InfeasiblePartition {
                reason: "capacity too small".into(),
            },
            GraphError::DimensionMismatch {
                what: "fine vector",
                expected: 4,
                actual: 2,
            },
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(GraphError::SelfLoop { node: 0 });
        assert!(e.source().is_none());
    }
}
