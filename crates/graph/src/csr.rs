//! Weighted undirected graphs in compressed sparse row (CSR) form.

use crate::error::GraphError;
use serde::{Deserialize, Serialize};

/// A weighted, undirected graph stored in compressed sparse row form.
///
/// Every undirected edge `{u, v}` is stored twice (once per direction) so
/// that neighbourhood iteration is a contiguous slice scan. Self-loops are
/// permitted (stored once) because aggregated community graphs produced by
/// Louvain carry them; most constructors reject them explicitly.
///
/// # Example
///
/// ```
/// use dsgl_graph::CsrGraph;
///
/// let g = CsrGraph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 0.5)]).unwrap();
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 3);
/// assert_eq!(g.degree(1), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrGraph {
    n: usize,
    offsets: Vec<usize>,
    targets: Vec<u32>,
    weights: Vec<f64>,
}

impl CsrGraph {
    /// Creates an empty graph with `n` isolated nodes.
    pub fn empty(n: usize) -> Self {
        CsrGraph {
            n,
            offsets: vec![0; n + 1],
            targets: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Builds a graph from an undirected edge list.
    ///
    /// Each `(u, v, w)` entry adds one undirected edge. Duplicate edges are
    /// kept as parallel entries; use [`crate::GraphBuilder`] to deduplicate.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeEndpointOutOfRange`] if an endpoint is `>= n`
    /// and [`GraphError::SelfLoop`] for `u == v` entries.
    pub fn from_edges(n: usize, edges: &[(usize, usize, f64)]) -> Result<Self, GraphError> {
        for &(u, v, _) in edges {
            if u >= n {
                return Err(GraphError::EdgeEndpointOutOfRange { node: u, len: n });
            }
            if v >= n {
                return Err(GraphError::EdgeEndpointOutOfRange { node: v, len: n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { node: u });
            }
        }
        Ok(Self::from_directed_pairs(n, edges.iter().flat_map(|&(u, v, w)| {
            [(u, v, w), (v, u, w)]
        })))
    }

    /// Builds a graph from an iterator of *directed* `(src, dst, w)` pairs.
    ///
    /// The caller is responsible for supplying both directions of each
    /// undirected edge (self-loops appear once). All endpoints must be `< n`.
    pub(crate) fn from_directed_pairs<I>(n: usize, pairs: I) -> Self
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        let pairs: Vec<(usize, usize, f64)> = pairs.into_iter().collect();
        let mut counts = vec![0usize; n + 1];
        for &(u, _, _) in &pairs {
            counts[u + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0u32; pairs.len()];
        let mut weights = vec![0f64; pairs.len()];
        for (u, v, w) in pairs {
            let slot = cursor[u];
            targets[slot] = v as u32;
            weights[slot] = w;
            cursor[u] += 1;
        }
        // Sort each adjacency slice by target for deterministic iteration.
        let mut g = CsrGraph {
            n,
            offsets,
            targets,
            weights,
        };
        g.sort_adjacency();
        g
    }

    fn sort_adjacency(&mut self) {
        for u in 0..self.n {
            let (s, e) = (self.offsets[u], self.offsets[u + 1]);
            let mut pairs: Vec<(u32, f64)> = self.targets[s..e]
                .iter()
                .copied()
                .zip(self.weights[s..e].iter().copied())
                .collect();
            pairs.sort_by_key(|&(t, _)| t);
            for (i, (t, w)) in pairs.into_iter().enumerate() {
                self.targets[s + i] = t;
                self.weights[s + i] = w;
            }
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of undirected edges (self-loops count once).
    pub fn edge_count(&self) -> usize {
        let loops = self.self_loop_count();
        (self.targets.len() - loops) / 2 + loops
    }

    fn self_loop_count(&self) -> usize {
        (0..self.n)
            .map(|u| {
                self.neighbors(u)
                    .filter(|&(v, _)| v == u)
                    .count()
            })
            .sum()
    }

    /// Degree of `u` (number of incident directed entries).
    ///
    /// # Panics
    ///
    /// Panics if `u >= node_count()`.
    pub fn degree(&self, u: usize) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Sum of weights of edges incident to `u` (self-loops counted twice,
    /// the convention modularity computations require).
    ///
    /// # Panics
    ///
    /// Panics if `u >= node_count()`.
    pub fn weighted_degree(&self, u: usize) -> f64 {
        self.neighbors(u)
            .map(|(v, w)| if v == u { 2.0 * w } else { w })
            .sum()
    }

    /// Iterates over the neighbours of `u` as `(target, weight)` pairs,
    /// sorted by target index.
    ///
    /// # Panics
    ///
    /// Panics if `u >= node_count()`.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (s, e) = (self.offsets[u], self.offsets[u + 1]);
        self.targets[s..e]
            .iter()
            .zip(&self.weights[s..e])
            .map(|(&t, &w)| (t as usize, w))
    }

    /// Returns the weight of edge `{u, v}` if present (first parallel entry).
    pub fn edge_weight(&self, u: usize, v: usize) -> Option<f64> {
        if u >= self.n || v >= self.n {
            return None;
        }
        self.neighbors(u).find(|&(t, _)| t == v).map(|(_, w)| w)
    }

    /// Total weight of all undirected edges (self-loops once).
    pub fn total_weight(&self) -> f64 {
        let mut total = 0.0;
        for u in 0..self.n {
            for (v, w) in self.neighbors(u) {
                if v >= u {
                    total += w;
                }
            }
        }
        total
    }

    /// Enumerates undirected edges `(u, v, w)` with `u <= v`.
    pub fn edges(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::with_capacity(self.edge_count());
        for u in 0..self.n {
            for (v, w) in self.neighbors(u) {
                if v >= u {
                    out.push((u, v, w));
                }
            }
        }
        out
    }

    /// Edge density: `2m / (n (n-1))` for a simple graph (self-loops ignored).
    pub fn density(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let m = (self.edge_count() - self.self_loop_count()) as f64;
        2.0 * m / (self.n as f64 * (self.n as f64 - 1.0))
    }

    /// Extracts the induced subgraph on `nodes`, relabelling them
    /// `0..nodes.len()` in the order given.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if any requested node does not
    /// exist.
    pub fn subgraph(&self, nodes: &[usize]) -> Result<CsrGraph, GraphError> {
        let mut remap = vec![usize::MAX; self.n];
        for (new, &old) in nodes.iter().enumerate() {
            if old >= self.n {
                return Err(GraphError::NodeOutOfRange {
                    node: old,
                    len: self.n,
                });
            }
            remap[old] = new;
        }
        let mut pairs = Vec::new();
        for (new_u, &old_u) in nodes.iter().enumerate() {
            for (old_v, w) in self.neighbors(old_u) {
                let new_v = remap[old_v];
                if new_v != usize::MAX {
                    pairs.push((new_u, new_v, w));
                }
            }
        }
        Ok(CsrGraph::from_directed_pairs(nodes.len(), pairs))
    }

    /// Returns the connected components as lists of node indices.
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let mut seen = vec![false; self.n];
        let mut comps = Vec::new();
        let mut stack = Vec::new();
        for start in 0..self.n {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            seen[start] = true;
            stack.push(start);
            while let Some(u) = stack.pop() {
                comp.push(u);
                for (v, _) in self.neighbors(u) {
                    if !seen[v] {
                        seen[v] = true;
                        stack.push(v);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }
}

impl Default for CsrGraph {
    fn default() -> Self {
        CsrGraph::empty(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        CsrGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]).unwrap()
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.density(), 0.0);
    }

    #[test]
    fn triangle_counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 2);
        assert!((g.total_weight() - 6.0).abs() < 1e-12);
        assert!((g.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn neighbors_sorted_by_target() {
        let g = CsrGraph::from_edges(4, &[(0, 3, 1.0), (0, 1, 1.0), (0, 2, 1.0)]).unwrap();
        let ns: Vec<usize> = g.neighbors(0).map(|(v, _)| v).collect();
        assert_eq!(ns, vec![1, 2, 3]);
    }

    #[test]
    fn edge_weight_lookup() {
        let g = triangle();
        assert_eq!(g.edge_weight(1, 2), Some(2.0));
        assert_eq!(g.edge_weight(2, 1), Some(2.0));
        assert_eq!(g.edge_weight(0, 0), None);
        assert_eq!(g.edge_weight(9, 1), None);
    }

    #[test]
    fn rejects_out_of_range_and_self_loops() {
        assert!(matches!(
            CsrGraph::from_edges(2, &[(0, 2, 1.0)]),
            Err(GraphError::EdgeEndpointOutOfRange { node: 2, len: 2 })
        ));
        assert!(matches!(
            CsrGraph::from_edges(2, &[(1, 1, 1.0)]),
            Err(GraphError::SelfLoop { node: 1 })
        ));
    }

    #[test]
    fn subgraph_relabels() {
        let g = CsrGraph::from_edges(5, &[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)]).unwrap();
        let s = g.subgraph(&[1, 2, 3]).unwrap();
        assert_eq!(s.node_count(), 3);
        assert_eq!(s.edge_count(), 1);
        assert_eq!(s.edge_weight(0, 1), Some(1.0));
        assert_eq!(s.edge_weight(0, 2), None);
    }

    #[test]
    fn subgraph_bad_node() {
        let g = triangle();
        assert!(g.subgraph(&[0, 7]).is_err());
    }

    #[test]
    fn connected_components_found() {
        let g = CsrGraph::from_edges(6, &[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)]).unwrap();
        let comps = g.connected_components();
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![3, 4]);
        assert_eq!(comps[2], vec![5]);
    }

    #[test]
    fn edges_roundtrip() {
        let g = triangle();
        let edges = g.edges();
        let g2 = CsrGraph::from_edges(3, &edges).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn weighted_degree_simple() {
        let g = triangle();
        assert!((g.weighted_degree(0) - 4.0).abs() < 1e-12);
        assert!((g.weighted_degree(2) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn default_is_empty() {
        let g = CsrGraph::default();
        assert_eq!(g.node_count(), 0);
    }
}
