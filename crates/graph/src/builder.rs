//! Incremental, deduplicating graph construction.

use crate::csr::CsrGraph;
use crate::error::GraphError;
use std::collections::BTreeMap;

/// How duplicate edges are combined by a [`GraphBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeRule {
    /// Add the weights together (default).
    #[default]
    Sum,
    /// Keep the weight of largest magnitude.
    MaxAbs,
    /// Keep the most recently added weight.
    Last,
}

/// Builder for [`CsrGraph`] that deduplicates parallel edges.
///
/// # Example
///
/// ```
/// use dsgl_graph::builder::{GraphBuilder, MergeRule};
///
/// let mut b = GraphBuilder::new(3).merge_rule(MergeRule::Sum);
/// b.add_edge(0, 1, 1.0).unwrap();
/// b.add_edge(1, 0, 2.0).unwrap(); // duplicate, summed
/// let g = b.build();
/// assert_eq!(g.edge_weight(0, 1), Some(3.0));
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    rule: MergeRule,
    allow_self_loops: bool,
    // Ordered map: edge iteration in `build` follows canonical key order
    // regardless of insertion history, so builder output carries no
    // hash-iteration-order dependence (determinism contract).
    edges: BTreeMap<(u32, u32), f64>,
}

impl GraphBuilder {
    /// Creates a builder for a graph of `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            rule: MergeRule::Sum,
            allow_self_loops: false,
            edges: BTreeMap::new(),
        }
    }

    /// Sets the duplicate-edge merge rule.
    pub fn merge_rule(mut self, rule: MergeRule) -> Self {
        self.rule = rule;
        self
    }

    /// Permits self-loops (needed for aggregated community graphs).
    pub fn allow_self_loops(mut self) -> Self {
        self.allow_self_loops = true;
        self
    }

    /// Adds an undirected edge, merging with any existing one.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeEndpointOutOfRange`] for endpoints `>= n`
    /// and [`GraphError::SelfLoop`] when self-loops are disallowed.
    pub fn add_edge(&mut self, u: usize, v: usize, w: f64) -> Result<&mut Self, GraphError> {
        if u >= self.n {
            return Err(GraphError::EdgeEndpointOutOfRange { node: u, len: self.n });
        }
        if v >= self.n {
            return Err(GraphError::EdgeEndpointOutOfRange { node: v, len: self.n });
        }
        if u == v && !self.allow_self_loops {
            return Err(GraphError::SelfLoop { node: u });
        }
        let key = if u <= v {
            (u as u32, v as u32)
        } else {
            (v as u32, u as u32)
        };
        let rule = self.rule;
        self.edges
            .entry(key)
            .and_modify(|old| {
                *old = match rule {
                    MergeRule::Sum => *old + w,
                    MergeRule::MaxAbs => {
                        if w.abs() > old.abs() {
                            w
                        } else {
                            *old
                        }
                    }
                    MergeRule::Last => w,
                }
            })
            .or_insert(w);
        Ok(self)
    }

    /// Number of distinct edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalises the builder into a [`CsrGraph`].
    pub fn build(self) -> CsrGraph {
        let n = self.n;
        let pairs = self.edges.into_iter().flat_map(|((u, v), w)| {
            let (u, v) = (u as usize, v as usize);
            if u == v {
                vec![(u, v, w)]
            } else {
                vec![(u, v, w), (v, u, w)]
            }
        });
        CsrGraph::from_directed_pairs(n, pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_sum() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.5).unwrap();
        b.add_edge(1, 0, 0.5).unwrap();
        assert_eq!(b.edge_count(), 1);
        let g = b.build();
        assert_eq!(g.edge_weight(0, 1), Some(2.0));
    }

    #[test]
    fn dedup_max_abs() {
        let mut b = GraphBuilder::new(2).merge_rule(MergeRule::MaxAbs);
        b.add_edge(0, 1, -3.0).unwrap();
        b.add_edge(0, 1, 2.0).unwrap();
        assert_eq!(b.build().edge_weight(0, 1), Some(-3.0));
    }

    #[test]
    fn dedup_last() {
        let mut b = GraphBuilder::new(2).merge_rule(MergeRule::Last);
        b.add_edge(0, 1, -3.0).unwrap();
        b.add_edge(0, 1, 2.0).unwrap();
        assert_eq!(b.build().edge_weight(0, 1), Some(2.0));
    }

    #[test]
    fn self_loop_policy() {
        let mut strict = GraphBuilder::new(2);
        assert!(strict.add_edge(1, 1, 1.0).is_err());
        let mut lax = GraphBuilder::new(2).allow_self_loops();
        lax.add_edge(1, 1, 4.0).unwrap();
        let g = lax.build();
        assert_eq!(g.edge_weight(1, 1), Some(4.0));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn out_of_range() {
        let mut b = GraphBuilder::new(2);
        assert!(b.add_edge(0, 5, 1.0).is_err());
    }

    #[test]
    fn chaining() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0)
            .unwrap()
            .add_edge(1, 2, 1.0)
            .unwrap();
        assert_eq!(b.edge_count(), 2);
    }
}
