//! Grouping communities into per-PE "super-communities".
//!
//! Implements the community-redistribution step of the DS-GL decomposition
//! (paper Sec. IV.B(2) and Fig. 6): communities extracted by Louvain are
//! packed onto a 2-D grid of PEs with a hard per-PE node capacity. Oversized
//! communities are split into sub-communities; larger communities get
//! priority and central placement; sub-communities of the same parent are
//! kept on nearby PEs so their couplings stay on short mesh links; small
//! communities and isolated nodes fill the remaining blanks to balance load.

use crate::community::Communities;
use crate::csr::CsrGraph;
use crate::error::GraphError;
use serde::{Deserialize, Serialize};

/// Packs communities onto a PE grid.
///
/// # Example
///
/// ```
/// use dsgl_graph::{Communities, Partitioner};
///
/// let comms = Communities::from_assignment(vec![0, 0, 0, 1, 1, 2]);
/// let placement = Partitioner::new(2, (2, 2)).place(&comms).unwrap();
/// assert_eq!(placement.pe_count(), 4);
/// assert!(placement.max_load() <= 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioner {
    capacity: usize,
    grid: (usize, usize),
}

/// The result of placing nodes onto a PE grid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    node_to_pe: Vec<usize>,
    pe_nodes: Vec<Vec<usize>>,
    grid: (usize, usize),
    capacity: usize,
}

impl Partitioner {
    /// Creates a partitioner for PEs of `capacity` nodes arranged in a
    /// `(rows, cols)` grid.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or the grid is empty.
    pub fn new(capacity: usize, grid: (usize, usize)) -> Self {
        assert!(capacity > 0, "PE capacity must be positive");
        assert!(grid.0 > 0 && grid.1 > 0, "PE grid must be non-empty");
        Partitioner { capacity, grid }
    }

    /// Total node capacity of the whole grid.
    pub fn total_capacity(&self) -> usize {
        self.capacity * self.grid.0 * self.grid.1
    }

    /// Places the communities onto the grid.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InfeasiblePartition`] when the node count
    /// exceeds the total grid capacity.
    pub fn place(&self, communities: &Communities) -> Result<Placement, GraphError> {
        self.place_impl(communities, None)
    }

    /// Like [`place`](Self::place), but when an oversized community must
    /// be split into capacity-sized chunks, members are ordered by a BFS
    /// over `graph` so strongly-connected members land in the same chunk
    /// (splitting a community by raw index order can sever exactly the
    /// couplings the community was built around).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InfeasiblePartition`] when the node count
    /// exceeds the total grid capacity, or a node error if `graph` does
    /// not cover the communities' nodes.
    pub fn place_with_graph(
        &self,
        communities: &Communities,
        graph: &CsrGraph,
    ) -> Result<Placement, GraphError> {
        if graph.node_count() < communities.node_count() {
            return Err(GraphError::NodeOutOfRange {
                node: communities.node_count() - 1,
                len: graph.node_count(),
            });
        }
        self.place_impl(communities, Some(graph))
    }

    fn place_impl(
        &self,
        communities: &Communities,
        graph: Option<&CsrGraph>,
    ) -> Result<Placement, GraphError> {
        let n = communities.node_count();
        if n > self.total_capacity() {
            return Err(GraphError::InfeasiblePartition {
                reason: format!(
                    "{n} nodes exceed grid capacity {}",
                    self.total_capacity()
                ),
            });
        }
        let (rows, cols) = self.grid;
        let pe_count = rows * cols;
        let mut free = vec![self.capacity; pe_count];
        let mut pe_nodes: Vec<Vec<usize>> = vec![Vec::new(); pe_count];
        let mut node_to_pe = vec![usize::MAX; n];
        // Where each parent community's chunks have landed (for locality).
        let mut parent_pes: Vec<Vec<usize>> = vec![Vec::new(); communities.count()];

        // 1. Split oversized communities into capacity-sized chunks.
        //    Larger communities are handled first (paper: higher priority).
        let mut chunks: Vec<(usize, Vec<usize>)> = Vec::new();
        for c in communities.by_decreasing_size() {
            let members = match graph {
                Some(g) if communities.size(c) > self.capacity => {
                    bfs_order(g, communities.members(c))
                }
                _ => communities.members(c).to_vec(),
            };
            for chunk in members.chunks(self.capacity) {
                chunks.push((c, chunk.to_vec()));
            }
        }
        chunks.sort_by_key(|(c, chunk)| (std::cmp::Reverse(chunk.len()), *c));

        let center = ((rows - 1) / 2, (cols - 1) / 2);
        for (parent, mut chunk) in chunks {
            while !chunk.is_empty() {
                let Some(pe) = self.pick_pe(&free, chunk.len(), &parent_pes[parent], center)
                else {
                    // No PE fits the whole remainder: split to the roomiest PE.
                    // The constructor guarantees a non-empty grid, but the
                    // no-panic policy prefers a typed error over an expect.
                    let pe = (0..pe_count).max_by_key(|&p| free[p]).ok_or_else(|| {
                        GraphError::InfeasiblePartition {
                            reason: "PE grid is empty".to_owned(),
                        }
                    })?;
                    let take = free[pe].min(chunk.len());
                    debug_assert!(take > 0, "capacity accounting broken");
                    let rest = chunk.split_off(take);
                    assign(&mut chunk, pe, &mut free, &mut pe_nodes, &mut node_to_pe);
                    parent_pes[parent].push(pe);
                    chunk = rest;
                    continue;
                };
                assign(&mut chunk, pe, &mut free, &mut pe_nodes, &mut node_to_pe);
                parent_pes[parent].push(pe);
            }
        }

        for nodes in &mut pe_nodes {
            nodes.sort_unstable();
        }
        Ok(Placement {
            node_to_pe,
            pe_nodes,
            grid: self.grid,
            capacity: self.capacity,
        })
    }

    /// Chooses the best PE with room for `need` nodes: closest to already
    /// placed chunks of the same parent community, then closest to the grid
    /// centre, then fullest (to leave big holes for big chunks).
    fn pick_pe(
        &self,
        free: &[usize],
        need: usize,
        siblings: &[usize],
        center: (usize, usize),
    ) -> Option<usize> {
        let (_, cols) = self.grid;
        let coord = |pe: usize| (pe / cols, pe % cols);
        let dist = |a: (usize, usize), b: (usize, usize)| {
            a.0.abs_diff(b.0) + a.1.abs_diff(b.1)
        };
        (0..free.len())
            .filter(|&pe| free[pe] >= need)
            .min_by_key(|&pe| {
                let c = coord(pe);
                let sib = siblings
                    .iter()
                    .map(|&s| dist(c, coord(s)))
                    .min()
                    .unwrap_or(0);
                (sib, dist(c, center), free[pe])
            })
    }
}

/// Orders `members` by weighted-BFS over their induced subgraph,
/// starting from the member with the largest intra-community weighted
/// degree; disconnected members are appended in index order and used as
/// new BFS seeds. Neighbour visits are ordered by descending edge
/// weight, so tightly-coupled members stay contiguous.
fn bfs_order(graph: &CsrGraph, members: &[usize]) -> Vec<usize> {
    use std::collections::{HashSet, VecDeque};
    let member_set: HashSet<usize> = members.iter().copied().collect();
    let intra_degree = |u: usize| -> f64 {
        graph
            .neighbors(u)
            .filter(|(v, _)| member_set.contains(v))
            .map(|(_, w)| w.abs())
            .sum()
    };
    let mut remaining: Vec<usize> = members.to_vec();
    // total_cmp is a total order even on non-finite weights, so the sort
    // cannot panic whatever the edge data holds.
    remaining.sort_by(|&a, &b| {
        intra_degree(b)
            .total_cmp(&intra_degree(a))
            .then(a.cmp(&b))
    });
    let mut visited: HashSet<usize> = HashSet::new();
    let mut order = Vec::with_capacity(members.len());
    let mut queue = VecDeque::new();
    for &seed in &remaining {
        if visited.contains(&seed) {
            continue;
        }
        visited.insert(seed);
        queue.push_back(seed);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            let mut neigh: Vec<(usize, f64)> = graph
                .neighbors(u)
                .filter(|(v, _)| member_set.contains(v) && !visited.contains(v))
                .collect();
            neigh.sort_by(|a, b| {
                b.1.abs()
                    .total_cmp(&a.1.abs())
                    .then(a.0.cmp(&b.0))
            });
            for (v, _) in neigh {
                visited.insert(v);
                queue.push_back(v);
            }
        }
    }
    order
}

fn assign(
    chunk: &mut Vec<usize>,
    pe: usize,
    free: &mut [usize],
    pe_nodes: &mut [Vec<usize>],
    node_to_pe: &mut [usize],
) {
    free[pe] -= chunk.len();
    for &node in chunk.iter() {
        node_to_pe[node] = pe;
        pe_nodes[pe].push(node);
    }
    chunk.clear();
}

impl Placement {
    /// Grid shape `(rows, cols)`.
    pub fn grid(&self) -> (usize, usize) {
        self.grid
    }

    /// Number of PEs in the grid.
    pub fn pe_count(&self) -> usize {
        self.grid.0 * self.grid.1
    }

    /// Per-PE node capacity this placement was built for.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of placed nodes.
    pub fn node_count(&self) -> usize {
        self.node_to_pe.len()
    }

    /// The PE hosting `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn pe_of(&self, node: usize) -> usize {
        self.node_to_pe[node]
    }

    /// Nodes hosted on `pe`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `pe >= pe_count()`.
    pub fn nodes_on(&self, pe: usize) -> &[usize] {
        &self.pe_nodes[pe]
    }

    /// Grid coordinate `(row, col)` of `pe`.
    ///
    /// # Panics
    ///
    /// Panics if `pe >= pe_count()`.
    pub fn pe_coord(&self, pe: usize) -> (usize, usize) {
        assert!(pe < self.pe_count(), "PE index out of range");
        (pe / self.grid.1, pe % self.grid.1)
    }

    /// Manhattan distance between two PEs on the grid.
    pub fn pe_distance(&self, a: usize, b: usize) -> usize {
        let (ar, ac) = self.pe_coord(a);
        let (br, bc) = self.pe_coord(b);
        ar.abs_diff(br) + ac.abs_diff(bc)
    }

    /// Largest PE load.
    pub fn max_load(&self) -> usize {
        self.pe_nodes.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Fraction of total capacity in use.
    pub fn utilization(&self) -> f64 {
        self.node_count() as f64 / (self.capacity * self.pe_count()) as f64
    }

    /// Per-PE loads.
    pub fn loads(&self) -> Vec<usize> {
        self.pe_nodes.iter().map(Vec::len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_placement_respects_capacity() {
        let comms = Communities::from_assignment(vec![0, 0, 0, 1, 1, 2, 2, 3]);
        let p = Partitioner::new(3, (2, 2)).place(&comms).unwrap();
        assert_eq!(p.node_count(), 8);
        assert!(p.max_load() <= 3);
        for node in 0..8 {
            let pe = p.pe_of(node);
            assert!(p.nodes_on(pe).contains(&node));
        }
    }

    #[test]
    fn oversized_community_is_split() {
        // One community of 10 nodes, capacity 4 -> at least 3 PEs used.
        let comms = Communities::from_assignment(vec![0; 10]);
        let p = Partitioner::new(4, (2, 2)).place(&comms).unwrap();
        assert!(p.max_load() <= 4);
        let used = p.loads().iter().filter(|&&l| l > 0).count();
        assert!(used >= 3);
    }

    #[test]
    fn split_chunks_stay_adjacent() {
        // 8 nodes, capacity 4, 3x3 grid: the two halves should land on
        // neighbouring PEs thanks to the sibling-distance heuristic.
        let comms = Communities::from_assignment(vec![0; 8]);
        let p = Partitioner::new(4, (3, 3)).place(&comms).unwrap();
        let pes: Vec<usize> = (0..8).map(|n| p.pe_of(n)).collect();
        let mut distinct = pes.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 2);
        assert_eq!(p.pe_distance(distinct[0], distinct[1]), 1);
    }

    #[test]
    fn infeasible_when_over_capacity() {
        let comms = Communities::from_assignment(vec![0; 10]);
        let err = Partitioner::new(2, (2, 2)).place(&comms).unwrap_err();
        assert!(matches!(err, GraphError::InfeasiblePartition { .. }));
    }

    #[test]
    fn exact_fit() {
        let comms = Communities::from_assignment(vec![0, 1, 2, 3]);
        let p = Partitioner::new(1, (2, 2)).place(&comms).unwrap();
        assert_eq!(p.utilization(), 1.0);
        assert_eq!(p.max_load(), 1);
    }

    #[test]
    fn coords_and_distance() {
        let comms = Communities::from_assignment(vec![0]);
        let p = Partitioner::new(1, (2, 3)).place(&comms).unwrap();
        assert_eq!(p.pe_coord(0), (0, 0));
        assert_eq!(p.pe_coord(4), (1, 1));
        assert_eq!(p.pe_distance(0, 5), 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        Partitioner::new(0, (1, 1));
    }

    #[test]
    fn empty_communities() {
        let comms = Communities::from_assignment(vec![]);
        let p = Partitioner::new(4, (2, 2)).place(&comms).unwrap();
        assert_eq!(p.node_count(), 0);
        assert_eq!(p.utilization(), 0.0);
    }

    #[test]
    fn largest_community_centred() {
        // Big community should take the centre PE of a 3x3 grid.
        let mut labels = vec![0; 5];
        labels.extend(vec![1, 2, 3]);
        let comms = Communities::from_assignment(labels);
        let p = Partitioner::new(5, (3, 3)).place(&comms).unwrap();
        let centre_pe = 4; // (1,1) on a 3x3 grid
        assert_eq!(p.pe_of(0), centre_pe);
    }
}
