//! Deterministic random-graph generators.
//!
//! All generators take an explicit [`rand::Rng`] so every dataset and
//! experiment in the workspace is reproducible from a seed.

use crate::builder::{GraphBuilder, MergeRule};
use crate::csr::CsrGraph;
use rand::{Rng, RngExt};

/// Stochastic block model: nodes split into blocks of the given `sizes`;
/// an edge appears within a block with probability `p_in` and between
/// blocks with probability `p_out` (weight 1).
///
/// This is the canonical generator for graphs with planted community
/// structure, the property the DS-GL decomposition (paper Sec. IV.B)
/// exploits.
///
/// # Panics
///
/// Panics if `p_in` or `p_out` is outside `[0, 1]`.
pub fn stochastic_block_model<R: Rng + ?Sized>(
    sizes: &[usize],
    p_in: f64,
    p_out: f64,
    rng: &mut R,
) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p_in), "p_in must be in [0,1]");
    assert!((0.0..=1.0).contains(&p_out), "p_out must be in [0,1]");
    let n: usize = sizes.iter().sum();
    let mut block = vec![0usize; n];
    let mut idx = 0;
    for (b, &s) in sizes.iter().enumerate() {
        for _ in 0..s {
            block[idx] = b;
            idx += 1;
        }
    }
    let mut builder = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if block[u] == block[v] { p_in } else { p_out };
            if rng.random::<f64>() < p {
                builder.add_edge(u, v, 1.0).expect("endpoints valid");
            }
        }
    }
    builder.build()
}

/// Random geometric graph on the unit square: `n` nodes at uniform random
/// positions, connected when within `radius`; edge weight decays linearly
/// with distance. Returns the graph and the node positions.
///
/// Used by the spatio-temporal datasets (sensor networks, counties,
/// stations are all spatially embedded).
pub fn random_geometric<R: Rng + ?Sized>(
    n: usize,
    radius: f64,
    rng: &mut R,
) -> (CsrGraph, Vec<(f64, f64)>) {
    let pos: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
        .collect();
    let mut builder = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let dx = pos[u].0 - pos[v].0;
            let dy = pos[u].1 - pos[v].1;
            let d = (dx * dx + dy * dy).sqrt();
            if d < radius {
                let w = 1.0 - d / radius;
                builder.add_edge(u, v, w).expect("endpoints valid");
            }
        }
    }
    (builder.build(), pos)
}

/// Erdős–Rényi `G(n, p)` graph with unit weights.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    let mut builder = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random::<f64>() < p {
                builder.add_edge(u, v, 1.0).expect("endpoints valid");
            }
        }
    }
    builder.build()
}

/// Sparse planted-partition graph in `O(n · (k_in + k_out))` time and
/// memory: `n` nodes in `communities` contiguous equal blocks; each node
/// draws `k_in` intra-block neighbours (weight `1.0`) and `k_out`
/// uniform neighbours anywhere (weight `0.25`), deduplicated keeping the
/// stronger weight. Unlike [`stochastic_block_model`], which visits all
/// `n²` pairs, this scales to the 100k+ node graphs the multigrid
/// annealing benchmarks sweep, while keeping the planted community
/// structure Louvain coarsening recovers.
///
/// # Panics
///
/// Panics if `communities == 0`.
pub fn planted_partition<R: Rng + ?Sized>(
    n: usize,
    communities: usize,
    k_in: usize,
    k_out: usize,
    rng: &mut R,
) -> CsrGraph {
    assert!(communities > 0, "need at least one community");
    let mut builder = GraphBuilder::new(n).merge_rule(MergeRule::MaxAbs);
    if n < 2 {
        return builder.build();
    }
    let block_len = n.div_ceil(communities);
    for u in 0..n {
        let block = u / block_len;
        let lo = block * block_len;
        let hi = (lo + block_len).min(n);
        if hi - lo >= 2 {
            for _ in 0..k_in {
                let v = lo + rng.random_range(0..hi - lo);
                if v != u {
                    builder.add_edge(u, v, 1.0).expect("endpoints valid");
                }
            }
        }
        for _ in 0..k_out {
            let v = rng.random_range(0..n);
            if v != u && (v < lo || v >= hi) {
                builder.add_edge(u, v, 0.25).expect("endpoints valid");
            }
        }
    }
    builder.build()
}

/// A `rows x cols` 4-neighbour grid (the shape of the PE mesh itself).
pub fn grid_2d(rows: usize, cols: usize) -> CsrGraph {
    let n = rows * cols;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let u = r * cols + c;
            if c + 1 < cols {
                edges.push((u, u + 1, 1.0));
            }
            if r + 1 < rows {
                edges.push((u, u + cols, 1.0));
            }
        }
    }
    CsrGraph::from_edges(n, &edges).expect("grid edges are valid")
}

/// A ring of `n` nodes (`n >= 3`), unit weights.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize) -> CsrGraph {
    assert!(n >= 3, "a ring needs at least 3 nodes");
    let edges: Vec<(usize, usize, f64)> =
        (0..n).map(|u| (u, (u + 1) % n, 1.0)).collect();
    CsrGraph::from_edges(n, &edges).expect("ring edges are valid")
}

/// The complete graph on `n` nodes with unit weights (the all-to-all
/// coupling topology of a dense Ising machine).
pub fn complete(n: usize) -> CsrGraph {
    let mut edges = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v, 1.0));
        }
    }
    CsrGraph::from_edges(n, &edges).expect("complete edges are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sbm_dense_blocks() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = stochastic_block_model(&[20, 20], 0.9, 0.0, &mut rng);
        assert_eq!(g.node_count(), 40);
        // No cross-block edges at p_out = 0.
        for (u, v, _) in g.edges() {
            assert_eq!(u < 20, v < 20, "edge {u}-{v} crosses blocks");
        }
        // Dense within blocks.
        assert!(g.edge_count() > 2 * (20 * 19 / 2) * 7 / 10);
    }

    #[test]
    fn sbm_deterministic() {
        let g1 = stochastic_block_model(&[10, 10], 0.5, 0.1, &mut StdRng::seed_from_u64(42));
        let g2 = stochastic_block_model(&[10, 10], 0.5, 0.1, &mut StdRng::seed_from_u64(42));
        assert_eq!(g1, g2);
    }

    #[test]
    #[should_panic(expected = "p_in")]
    fn sbm_rejects_bad_probability() {
        stochastic_block_model(&[5], 1.5, 0.0, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn geometric_edges_within_radius() {
        let mut rng = StdRng::seed_from_u64(2);
        let (g, pos) = random_geometric(50, 0.3, &mut rng);
        for (u, v, w) in g.edges() {
            let dx = pos[u].0 - pos[v].0;
            let dy = pos[u].1 - pos[v].1;
            let d = (dx * dx + dy * dy).sqrt();
            assert!(d < 0.3);
            assert!((w - (1.0 - d / 0.3)).abs() < 1e-12);
        }
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(erdos_renyi(10, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(erdos_renyi(10, 1.0, &mut rng).edge_count(), 45);
    }

    #[test]
    fn planted_partition_is_sparse_and_clustered() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = planted_partition(400, 8, 6, 2, &mut rng);
        assert_eq!(g.node_count(), 400);
        // O(n·k) edges, nowhere near the n²/2 of the dense generators.
        assert!(g.edge_count() <= 400 * 8);
        assert!(g.edge_count() >= 400 * 2);
        // Intra-block edges dominate and carry the heavier weight.
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v, w) in g.edges() {
            if u / 50 == v / 50 {
                intra += 1;
                assert_eq!(w, 1.0);
            } else {
                inter += 1;
                assert_eq!(w, 0.25);
            }
        }
        assert!(intra > 2 * inter, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn planted_partition_deterministic_and_degenerate_sizes() {
        let a = planted_partition(60, 4, 5, 1, &mut StdRng::seed_from_u64(9));
        let b = planted_partition(60, 4, 5, 1, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        assert_eq!(planted_partition(0, 3, 4, 1, &mut StdRng::seed_from_u64(0)).node_count(), 0);
        assert_eq!(planted_partition(1, 1, 4, 1, &mut StdRng::seed_from_u64(0)).edge_count(), 0);
    }

    #[test]
    fn grid_shape() {
        let g = grid_2d(3, 4);
        assert_eq!(g.node_count(), 12);
        // 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17
        assert_eq!(g.edge_count(), 17);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior
    }

    #[test]
    fn ring_shape() {
        let g = ring(5);
        assert_eq!(g.edge_count(), 5);
        for u in 0..5 {
            assert_eq!(g.degree(u), 2);
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn ring_too_small() {
        ring(2);
    }

    #[test]
    fn complete_shape() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert!((g.density() - 1.0).abs() < 1e-12);
    }
}
