//! Structural graph metrics used in evaluation and sanity checks.

use crate::community::Communities;
use crate::csr::CsrGraph;

/// Summary statistics of a degree distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
}

/// Computes degree statistics; `None` for an empty graph.
pub fn degree_stats(graph: &CsrGraph) -> Option<DegreeStats> {
    let n = graph.node_count();
    if n == 0 {
        return None;
    }
    let degrees: Vec<usize> = (0..n).map(|u| graph.degree(u)).collect();
    Some(DegreeStats {
        min: *degrees.iter().min().expect("non-empty"),
        max: *degrees.iter().max().expect("non-empty"),
        mean: degrees.iter().sum::<usize>() as f64 / n as f64,
    })
}

/// Fraction of edge weight crossing community boundaries — the
/// "communication demand" a placement must carry over the mesh.
///
/// Returns `0.0` for graphs without edges.
///
/// # Panics
///
/// Panics if the partition does not cover the graph.
pub fn cut_fraction(graph: &CsrGraph, communities: &Communities) -> f64 {
    assert_eq!(
        communities.node_count(),
        graph.node_count(),
        "partition must cover the graph"
    );
    let mut cut = 0.0;
    let mut total = 0.0;
    for (u, v, w) in graph.edges() {
        if u == v {
            continue;
        }
        total += w.abs();
        if communities.label(u) != communities.label(v) {
            cut += w.abs();
        }
    }
    if total == 0.0 {
        0.0
    } else {
        cut / total
    }
}

/// Global clustering coefficient (transitivity): `3·triangles / wedges`.
///
/// Weights are ignored; parallel edges and self-loops are not expected.
pub fn clustering_coefficient(graph: &CsrGraph) -> f64 {
    let n = graph.node_count();
    let mut triangles = 0usize;
    let mut wedges = 0usize;
    for u in 0..n {
        let neigh: Vec<usize> = graph.neighbors(u).map(|(v, _)| v).filter(|&v| v != u).collect();
        let d = neigh.len();
        wedges += d * d.saturating_sub(1) / 2;
        for i in 0..neigh.len() {
            for j in (i + 1)..neigh.len() {
                if graph.edge_weight(neigh[i], neigh[j]).is_some() {
                    triangles += 1;
                }
            }
        }
    }
    if wedges == 0 {
        0.0
    } else {
        triangles as f64 / wedges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_stats_triangle_plus_isolate() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]).unwrap();
        let s = degree_stats(&g).unwrap();
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 2);
        assert!((s.mean - 1.5).abs() < 1e-12);
    }

    #[test]
    fn degree_stats_empty() {
        assert!(degree_stats(&CsrGraph::empty(0)).is_none());
    }

    #[test]
    fn cut_fraction_extremes() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0), (1, 2, 2.0)]).unwrap();
        let aligned = Communities::from_assignment(vec![0, 0, 1, 1]);
        assert!((cut_fraction(&g, &aligned) - 0.5).abs() < 1e-12);
        let one = Communities::from_assignment(vec![0, 0, 0, 0]);
        assert_eq!(cut_fraction(&g, &one), 0.0);
    }

    #[test]
    fn cut_fraction_no_edges() {
        let g = CsrGraph::empty(3);
        let c = Communities::singletons(3);
        assert_eq!(cut_fraction(&g, &c), 0.0);
    }

    #[test]
    fn clustering_triangle_is_one() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]).unwrap();
        assert!((clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_path_is_zero() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        assert_eq!(clustering_coefficient(&g), 0.0);
    }
}
