//! Thread-count control for parallel training and inference kernels.
//!
//! All multi-threaded code in this crate (ridge solves, gradient
//! accumulation, batch annealing) is written so that splitting work
//! across threads never changes the order of floating-point operations
//! within any output value: results are bit-identical for every
//! [`Threading`] choice and for the serial (`--no-default-features`)
//! build. The knob therefore only trades wall-clock time, never
//! numerics.

/// How many worker threads parallel kernels may use.
///
/// # Example
///
/// ```
/// use dsgl_core::Threading;
///
/// let serial = Threading::Sequential.install(|| expensive());
/// let fixed = Threading::Fixed(4).install(|| expensive());
/// // Bit-identical regardless of thread count.
/// # fn expensive() -> f64 { 1.0 }
/// assert_eq!(serial, fixed);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Threading {
    /// Run everything on the calling thread.
    Sequential,
    /// Let the thread pool decide (respects `RAYON_NUM_THREADS`, else
    /// one thread per available core).
    #[default]
    Auto,
    /// Use exactly this many worker threads (values of 0 are treated
    /// as 1).
    Fixed(usize),
}

impl Threading {
    /// Runs `f` with this thread-count policy active; every parallel
    /// kernel invoked inside `f` observes it. With the `parallel`
    /// feature disabled this is a plain call.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        #[cfg(feature = "parallel")]
        {
            let threads = match self {
                Threading::Sequential => Some(1),
                Threading::Auto => None,
                Threading::Fixed(k) => Some((*k).max(1)),
            };
            match threads {
                Some(k) => rayon::ThreadPoolBuilder::new()
                    .num_threads(k)
                    .build()
                    .expect("thread pool construction cannot fail")
                    .install(f),
                None => f(),
            }
        }
        #[cfg(not(feature = "parallel"))]
        {
            f()
        }
    }

    /// Number of worker threads this policy resolves to right now.
    pub fn resolved_threads(&self) -> usize {
        #[cfg(feature = "parallel")]
        {
            match self {
                Threading::Sequential => 1,
                Threading::Auto => rayon::current_num_threads(),
                Threading::Fixed(k) => (*k).max(1),
            }
        }
        #[cfg(not(feature = "parallel"))]
        {
            1
        }
    }
}

/// Minimum estimated flop count before forking threads is worth the
/// spawn cost (mirrors the threshold used by the annealing kernels).
#[cfg(feature = "parallel")]
pub(crate) const PAR_MIN_WORK: usize = 1 << 20;

/// Maps `f` over `0..len`, collecting results in index order.
///
/// Splits across threads when the `parallel` feature is enabled and
/// `len * work_per_item` is large enough; each item is produced by an
/// independent closure call, so the output is bit-identical to the
/// serial loop regardless of thread count.
#[cfg(feature = "parallel")]
pub(crate) fn par_map<T, F>(len: usize, work_per_item: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    use rayon::prelude::*;
    let total_work = len.saturating_mul(work_per_item.max(1));
    if total_work < PAR_MIN_WORK || rayon::current_num_threads() <= 1 {
        return (0..len).map(f).collect();
    }
    (0..len).into_par_iter().map(f).collect()
}

/// Serial fallback when the `parallel` feature is disabled.
#[cfg(not(feature = "parallel"))]
pub(crate) fn par_map<T, F>(len: usize, _work_per_item: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    (0..len).map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let small = par_map(17, 1, |i| i * 3);
        assert_eq!(small, (0..17).map(|i| i * 3).collect::<Vec<_>>());
        let big = par_map(4096, 4096, |i| (i as f64).sin().to_bits());
        assert_eq!(
            big,
            (0..4096).map(|i| (i as f64).sin().to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn install_runs_closure_under_every_policy() {
        for policy in [
            Threading::Sequential,
            Threading::Auto,
            Threading::Fixed(0),
            Threading::Fixed(4),
        ] {
            assert_eq!(policy.install(|| 41 + 1), 42);
            assert!(policy.resolved_threads() >= 1);
        }
    }

    #[test]
    fn sequential_resolves_to_one_thread() {
        assert_eq!(Threading::Sequential.resolved_threads(), 1);
        #[cfg(feature = "parallel")]
        assert_eq!(Threading::Fixed(3).resolved_threads(), 3);
        #[cfg(not(feature = "parallel"))]
        assert_eq!(Threading::Fixed(3).resolved_threads(), 1);
    }
}
