//! Converting dataset samples to and from dynamical-system states.

use crate::error::CoreError;
use crate::model::VariableLayout;
use dsgl_data::Sample;

/// Assembles a full ground-truth state vector (history ++ target) from a
/// sample — the teacher-forced state the trainer regresses on.
///
/// # Errors
///
/// Returns [`CoreError::SampleShapeMismatch`] when the sample does not
/// match the layout.
pub fn full_state(layout: &VariableLayout, sample: &Sample) -> Result<Vec<f64>, CoreError> {
    check_sample(layout, sample)?;
    let mut state = Vec::with_capacity(layout.total());
    state.extend_from_slice(&sample.history);
    state.extend_from_slice(&sample.target);
    Ok(state)
}

/// Assembles the inference-time state: history filled in, target block
/// zeroed (to be randomised and annealed by the machine).
///
/// # Errors
///
/// Returns [`CoreError::SampleShapeMismatch`] when the sample does not
/// match the layout.
pub fn observed_state(layout: &VariableLayout, sample: &Sample) -> Result<Vec<f64>, CoreError> {
    check_sample(layout, sample)?;
    let mut state = vec![0.0; layout.total()];
    state[..layout.history_len()].copy_from_slice(&sample.history);
    Ok(state)
}

/// Extracts the target block from a full state vector.
///
/// # Panics
///
/// Panics if `state.len() != layout.total()`.
pub fn extract_target(layout: &VariableLayout, state: &[f64]) -> Vec<f64> {
    assert_eq!(state.len(), layout.total(), "state length mismatch");
    state[layout.target_range()].to_vec()
}

fn check_sample(layout: &VariableLayout, sample: &Sample) -> Result<(), CoreError> {
    if sample.history.len() != layout.history_len() {
        return Err(CoreError::SampleShapeMismatch {
            what: "sample history",
            expected: layout.history_len(),
            actual: sample.history.len(),
        });
    }
    if sample.target.len() != layout.target_len() {
        return Err(CoreError::SampleShapeMismatch {
            what: "sample target",
            expected: layout.target_len(),
            actual: sample.target.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Sample {
        Sample {
            history: vec![1.0, 2.0, 3.0, 4.0],
            target: vec![5.0, 6.0],
        }
    }

    #[test]
    fn full_state_layout() {
        let l = VariableLayout::new(2, 2, 1);
        let s = full_state(&l, &sample()).unwrap();
        assert_eq!(s, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(extract_target(&l, &s), vec![5.0, 6.0]);
    }

    #[test]
    fn observed_state_zeroes_target() {
        let l = VariableLayout::new(2, 2, 1);
        let s = observed_state(&l, &sample()).unwrap();
        assert_eq!(s, vec![1.0, 2.0, 3.0, 4.0, 0.0, 0.0]);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let l = VariableLayout::new(3, 2, 1);
        assert!(matches!(
            full_state(&l, &sample()),
            Err(CoreError::SampleShapeMismatch { .. })
        ));
        let l2 = VariableLayout::new(2, 3, 1);
        assert!(observed_state(&l2, &sample()).is_err());
    }
}
