//! Training DS-GL models (paper Sec. III.B).
//!
//! Training constructs a dynamical system whose lowest-energy states
//! coincide with the data distribution: for every training window the
//! ground-truth target must be the fixed point of the machine. The
//! regression formula `σᵥ = Σⱼ Jᵥⱼσⱼ / (-hᵥ)` (paper Eq. 10) is exactly
//! the hardware stability criterion (Eq. 5), so minimising its
//! teacher-forced MSE by gradient descent aligns the machine's
//! equilibria with the data.
//!
//! Two mechanisms keep the learned system physical:
//!
//! - `h` stays strictly negative, preserving the convexity of the
//!   Hamiltonian (the paper forces `h` negative during training). By
//!   default `h` is *frozen* at its initial value: the regression is
//!   invariant under jointly rescaling row `v` of `J` and `hᵥ`, so
//!   training both is a degenerate parameterisation in which they chase
//!   each other;
//! - contraction: for every target variable, `Σ_{j∈target} |Jᵥⱼ|` should
//!   not exceed `margin · |hᵥ|`, which makes the free-block fixed-point
//!   iteration a contraction so natural annealing converges instead of
//!   oscillating — the software analogue of keeping the resistor ring
//!   dominant over the coupling currents. A soft penalty steers training
//!   toward the bound and a one-time symmetric projection enforces it at
//!   the end (a hard per-step projection would ratchet `|h|` upward and
//!   destabilise training).

use crate::error::CoreError;
use crate::model::DsGlModel;
use crate::telemetry::TelemetrySink;
use crate::windows::full_state;
use dsgl_data::Sample;
use dsgl_nn::Adam;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training windows.
    pub epochs: usize,
    /// Adam learning rate (initial).
    pub lr: f64,
    /// Per-epoch multiplicative learning-rate decay. Constant-rate Adam
    /// limit-cycles once the residual gradient is small (the step size
    /// stays ~lr regardless of gradient magnitude), so decay is required
    /// for convergence on this underdetermined regression.
    pub lr_decay: f64,
    /// Windows per gradient step.
    pub batch_size: usize,
    /// Lower bound on `|h|` (projection `h ≤ -h_min`).
    pub h_min: f64,
    /// Contraction margin in `(0, 1)`: target rows keep
    /// `Σ_{j∈target}|J| ≤ margin·|h|`.
    pub contraction_margin: f64,
    /// Weight of the soft contraction penalty
    /// `λ·Σᵥ relu(Σ_{j∈target}|Jᵥⱼ| - margin·|hᵥ|)²` added to the loss.
    /// The penalty steers training toward contractive solutions; a final
    /// one-time projection then guarantees the bound. (A hard per-step
    /// projection would ratchet `|h|` upward and destabilise training.)
    pub contraction_penalty: f64,
    /// L1 shrinkage on couplings (0 disables), applied per step.
    pub l1: f64,
    /// Decoupled L2 weight decay on couplings (0 disables): after each
    /// Adam step, `J ← J·(1 - lr·l2)`. Shrinks the many weakly-determined
    /// couplings of the underdetermined regression toward zero, trading a
    /// little bias for a large variance reduction.
    pub l2: f64,
    /// Shuffle window order each epoch.
    pub shuffle: bool,
    /// Keep `h` fixed during training (default). The regression
    /// `σᵥ = Σⱼ Jᵥⱼσⱼ / (-hᵥ)` is invariant under a joint rescaling of
    /// row `v` of `J` and `hᵥ`, so training both is a redundant
    /// parameterisation in which the two chase each other and gradient
    /// descent never settles; freezing `h` removes the degeneracy while
    /// losing no expressivity.
    pub freeze_h: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            lr: 0.01,
            lr_decay: 0.90,
            batch_size: 32,
            h_min: 0.5,
            contraction_margin: 0.95,
            contraction_penalty: 0.05,
            l1: 0.0,
            l2: 0.0,
            shuffle: true,
            freeze_h: true,
        }
    }
}

/// Per-epoch record of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean squared regression error per epoch.
    pub epoch_losses: Vec<f64>,
}

impl TrainReport {
    /// The final epoch's loss.
    ///
    /// # Panics
    ///
    /// Panics if the report is empty.
    pub fn final_loss(&self) -> f64 {
        *self.epoch_losses.last().expect("non-empty report")
    }
}

/// Trains [`DsGlModel`]s by teacher-forced regression.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
    telemetry: TelemetrySink,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics on non-positive `lr`, `epochs`, `batch_size`, `h_min`, or a
    /// margin outside `(0, 1)`.
    pub fn new(config: TrainConfig) -> Self {
        assert!(config.lr > 0.0, "learning rate must be positive");
        assert!(config.epochs > 0, "need at least one epoch");
        assert!(config.batch_size > 0, "batch size must be positive");
        assert!(config.h_min > 0.0, "h_min must be positive");
        assert!(
            config.contraction_margin > 0.0 && config.contraction_margin < 1.0,
            "contraction margin must lie in (0, 1)"
        );
        Trainer {
            config,
            telemetry: TelemetrySink::noop(),
        }
    }

    /// Attaches a [`TelemetrySink`]: fits record the `train.*`
    /// instrument family (SGD fits, epochs, per-epoch losses, final
    /// loss, and a wall-clock fit span). The sink never touches the RNG
    /// or the optimiser, so fitted models are bit-identical with or
    /// without it.
    #[must_use]
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        self.telemetry = sink;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// The attached telemetry sink (noop unless
    /// [`with_telemetry`](Self::with_telemetry) was called).
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.telemetry
    }

    /// Fits `model` on `samples` with all couplings trainable.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyTrainingSet`] or a shape mismatch.
    pub fn fit<R: Rng + ?Sized>(
        &self,
        model: &mut DsGlModel,
        samples: &[Sample],
        rng: &mut R,
    ) -> Result<TrainReport, CoreError> {
        self.fit_masked(model, samples, None, rng)
    }

    /// Fits `model` under an optional structural mask: entry `i·n + j`
    /// being `false` pins coupling `(i, j)` to zero (used by the
    /// decomposition fine-tune, paper Sec. IV.B(3)).
    ///
    /// Gradient accumulation is multi-threaded under the `parallel`
    /// feature (one task per target row); the reduction order is fixed,
    /// so the fitted model is bit-identical for every
    /// [`crate::Threading`] policy and for the serial build.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyTrainingSet`], a shape mismatch, or
    /// [`CoreError::InvalidConfig`] for a wrong-sized mask.
    pub fn fit_masked<R: Rng + ?Sized>(
        &self,
        model: &mut DsGlModel,
        samples: &[Sample],
        mask: Option<&[bool]>,
        rng: &mut R,
    ) -> Result<TrainReport, CoreError> {
        if samples.is_empty() {
            return Err(CoreError::EmptyTrainingSet);
        }
        let _fit_span = self.telemetry.time_phase("train.phase.fit_ns");
        let layout = model.layout();
        let n = layout.total();
        if let Some(m) = mask {
            if m.len() != n * n {
                return Err(CoreError::InvalidConfig {
                    reason: format!("mask has length {}, expected {}", m.len(), n * n),
                });
            }
            // Zero any couplings outside the mask before training.
            model.coupling_mut().apply_mask(m);
        }
        // Pre-assemble ground-truth states once.
        let states: Vec<Vec<f64>> = samples
            .iter()
            .map(|s| full_state(&layout, s))
            .collect::<Result<_, _>>()?;

        let target: Vec<usize> = layout.target_range().collect();
        let tri_len = n * (n - 1) / 2;
        let mut adam = Adam::new(self.config.lr);
        let mut order: Vec<usize> = (0..states.len()).collect();
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);

        // Flat gradient buffers reused across batches.
        let mut grad_tri = vec![0.0; tri_len];
        let mut grad_h = vec![0.0; n];

        for epoch in 0..self.config.epochs {
            adam.set_learning_rate(
                (self.config.lr * self.config.lr_decay.powi(epoch as i32)).max(1e-6),
            );
            if self.config.shuffle {
                order.shuffle(rng);
            }
            let mut epoch_sse = 0.0;
            let mut epoch_count = 0usize;
            for batch in order.chunks(self.config.batch_size) {
                grad_tri.iter_mut().for_each(|g| *g = 0.0);
                grad_h.iter_mut().for_each(|g| *g = 0.0);
                // Per-target gradient partials only read the model, so
                // they are computed in parallel (each accumulating over
                // the batch in sample order) and reduced serially in
                // target order below. Both orders are independent of
                // the thread count, so the step is bit-identical across
                // Threading policies and the serial build.
                let parts: Vec<(Vec<f64>, f64, f64)> = {
                    let model_ref: &DsGlModel = model;
                    crate::threading::par_map(target.len(), batch.len() * n, |ti| {
                        let v = target[ti];
                        let q = -model_ref.h()[v];
                        let row = model_ref.coupling().row(v);
                        let mut g_row = vec![0.0; n];
                        let mut g_h = 0.0;
                        let mut sse = 0.0;
                        for &si in batch {
                            let state = &states[si];
                            let mut dot = 0.0;
                            for (j, &s) in state.iter().enumerate() {
                                dot += row[j] * s;
                            }
                            let pred = dot / q;
                            let err = pred - state[v];
                            sse += err * err;
                            let coeff = 2.0 * err / q;
                            for (j, &s) in state.iter().enumerate() {
                                if j != v {
                                    g_row[j] += coeff * s;
                                }
                            }
                            g_h += 2.0 * err * pred / q;
                        }
                        (g_row, g_h, sse)
                    })
                };
                for (ti, (g_row, g_h, sse)) in parts.into_iter().enumerate() {
                    let v = target[ti];
                    for (j, g) in g_row.into_iter().enumerate() {
                        if j != v {
                            grad_tri[tri_index(n, v, j)] += g;
                        }
                    }
                    grad_h[v] += g_h;
                    epoch_sse += sse;
                    epoch_count += batch.len();
                }
                // Soft contraction penalty (per batch, so its scale
                // tracks the data-loss gradient scale).
                if self.config.contraction_penalty > 0.0 {
                    let lambda = self.config.contraction_penalty * batch.len() as f64;
                    let m = self.config.contraction_margin;
                    for &v in &target {
                        let row = model.coupling().row(v);
                        let s: f64 = target.iter().map(|&j| row[j].abs()).sum();
                        let slack = s - m * (-model.h()[v]);
                        if slack > 0.0 {
                            let d = 2.0 * lambda * slack;
                            for &j in &target {
                                if j != v && row[j] != 0.0 {
                                    grad_tri[tri_index(n, v, j)] += d * row[j].signum();
                                }
                            }
                            grad_h[v] += d * m;
                        }
                    }
                }
                self.apply_step(model, &mut adam, &grad_tri, &grad_h, mask, &target);
            }
            epoch_losses.push(epoch_sse / epoch_count.max(1) as f64);
        }
        self.project_contraction(model, &target);
        if self.telemetry.is_enabled() {
            self.telemetry.counter_add("train.sgd_fits", 1);
            self.telemetry
                .counter_add("train.epochs", epoch_losses.len() as u64);
            for &loss in &epoch_losses {
                self.telemetry.record("train.epoch_loss", loss);
            }
            if let Some(&last) = epoch_losses.last() {
                self.telemetry.gauge_set("train.final_loss", last);
            }
        }
        Ok(TrainReport { epoch_losses })
    }

    /// One optimiser step: Adam on the packed upper triangle of `J` and
    /// on `h`, then mask, L1, negativity, and contraction projections.
    fn apply_step(
        &self,
        model: &mut DsGlModel,
        adam: &mut Adam,
        grad_tri: &[f64],
        grad_h: &[f64],
        mask: Option<&[bool]>,
        target: &[usize],
    ) {
        let n = model.layout().total();
        // Pack current parameters.
        let mut tri = vec![0.0; grad_tri.len()];
        {
            let c = model.coupling();
            let mut k = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    tri[k] = c.get(i, j);
                    k += 1;
                }
            }
        }
        adam.update(0, &mut tri, grad_tri);
        if self.config.l2 > 0.0 {
            let factor = (1.0 - adam.learning_rate() * self.config.l2).max(0.0);
            for v in tri.iter_mut() {
                *v *= factor;
            }
        }
        if self.config.l1 > 0.0 {
            let shrink = self.config.l1 * self.config.lr;
            for v in tri.iter_mut() {
                *v = v.signum() * (v.abs() - shrink).max(0.0);
            }
        }
        // Unpack with mask enforcement.
        {
            let c = model.coupling_mut();
            let mut k = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    let allowed = mask.is_none_or(|m| m[i * n + j] && m[j * n + i]);
                    c.set(i, j, if allowed { tri[k] } else { 0.0 });
                    k += 1;
                }
            }
        }
        if !self.config.freeze_h {
            let h = model.h_mut();
            adam.update(1, h, grad_h);
            for hv in h.iter_mut() {
                *hv = hv.min(-self.config.h_min);
            }
        }
        let _ = target;
    }

    /// One-time symmetric projection enforcing the contraction bound
    /// after training: violating target rows have their target-block
    /// couplings scaled down (pairwise by the stricter of the two rows'
    /// factors, preserving symmetry). History couplings are untouched, so
    /// the observed-input drive keeps its calibration.
    fn project_contraction(&self, model: &mut DsGlModel, target: &[usize]) {
        let m = self.config.contraction_margin;
        // A couple of sweeps: pairwise min-scaling can leave tiny
        // residual violations after the first pass.
        for _ in 0..3 {
            let scales: Vec<(usize, f64)> = target
                .iter()
                .map(|&v| {
                    let row = model.coupling().row(v);
                    let s: f64 = target.iter().map(|&j| row[j].abs()).sum();
                    let bound = m * (-model.h()[v]);
                    (v, if s > bound && s > 0.0 { bound / s } else { 1.0 })
                })
                .collect();
            if scales.iter().all(|&(_, a)| a >= 1.0) {
                break;
            }
            let alpha: std::collections::HashMap<usize, f64> = scales.into_iter().collect();
            for vi in 0..target.len() {
                for vj in (vi + 1)..target.len() {
                    let (u, v) = (target[vi], target[vj]);
                    let w = model.coupling().get(u, v);
                    if w != 0.0 {
                        let a = alpha[&u].min(alpha[&v]);
                        if a < 1.0 {
                            model.coupling_mut().set(u, v, w * a);
                        }
                    }
                }
            }
        }
    }

    /// Teacher-forced regression RMSE over a sample set — a fast proxy
    /// for annealed-inference accuracy used for validation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyTrainingSet`] or a shape mismatch.
    pub fn regression_rmse(model: &DsGlModel, samples: &[Sample]) -> Result<f64, CoreError> {
        if samples.is_empty() {
            return Err(CoreError::EmptyTrainingSet);
        }
        let layout = model.layout();
        let mut sse = 0.0;
        let mut count = 0usize;
        for s in samples {
            let state = full_state(&layout, s)?;
            for v in layout.target_range() {
                let err = model.regress_one(&state, v) - state[v];
                sse += err * err;
                count += 1;
            }
        }
        Ok((sse / count as f64).sqrt())
    }
}

/// Index of `(i, j)` (`i != j`) in the packed upper triangle of an
/// `n x n` symmetric matrix.
fn tri_index(n: usize, i: usize, j: usize) -> usize {
    let (a, b) = if i < j { (i, j) } else { (j, i) };
    a * n - a * (a + 1) / 2 + (b - a - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VariableLayout;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Builds samples from a known linear rule: target = 0.6·last + 0.3·mean(others).
    fn linear_samples(n_nodes: usize, count: usize, seed: u64) -> Vec<Sample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let hist: Vec<f64> = (0..n_nodes).map(|_| rng.random::<f64>() * 0.8).collect();
                let mean = hist.iter().sum::<f64>() / n_nodes as f64;
                let target: Vec<f64> = hist.iter().map(|&h| 0.6 * h + 0.3 * mean).collect();
                Sample {
                    history: hist,
                    target,
                }
            })
            .collect()
    }

    #[test]
    fn tri_index_bijective() {
        let n = 5;
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let k = tri_index(n, i, j);
                assert_eq!(k, tri_index(n, j, i), "symmetric");
                assert!(k < n * (n - 1) / 2);
                assert!(seen.insert(k), "collision at ({i},{j})");
            }
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn loss_decreases_and_fits_linear_rule() {
        let samples = linear_samples(4, 60, 1);
        let layout = VariableLayout::new(1, 4, 1);
        let mut model = DsGlModel::new(layout);
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = TrainConfig {
            epochs: 60,
            lr: 0.05,
            lr_decay: 0.98,
            ..TrainConfig::default()
        };
        let report = Trainer::new(cfg).fit(&mut model, &samples, &mut rng).unwrap();
        let first = report.epoch_losses[0];
        let last = report.final_loss();
        assert!(last < first / 10.0, "loss {first} -> {last}");
        let rmse = Trainer::regression_rmse(&model, &samples).unwrap();
        assert!(rmse < 0.05, "regression rmse {rmse}");
    }

    #[test]
    fn h_stays_negative_and_contractive() {
        let samples = linear_samples(3, 30, 3);
        let layout = VariableLayout::new(1, 3, 1);
        let mut model = DsGlModel::new(layout);
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = TrainConfig {
            epochs: 20,
            ..TrainConfig::default()
        };
        Trainer::new(cfg).fit(&mut model, &samples, &mut rng).unwrap();
        for &h in model.h() {
            assert!(h <= -cfg.h_min, "h = {h}");
        }
        // Contraction over the target block.
        let target: Vec<usize> = layout.target_range().collect();
        for &v in &target {
            let row = model.coupling().row(v);
            let s: f64 = target.iter().map(|&j| row[j].abs()).sum();
            assert!(
                s <= cfg.contraction_margin * (-model.h()[v]) + 1e-9,
                "row {v}: sum {s} vs h {}",
                model.h()[v]
            );
        }
    }

    #[test]
    fn masked_training_respects_mask() {
        let samples = linear_samples(3, 30, 5);
        let layout = VariableLayout::new(1, 3, 1); // 6 vars
        let n = layout.total();
        let mut model = DsGlModel::new(layout);
        // Forbid every coupling involving variable 0.
        let mut mask = vec![true; n * n];
        for j in 0..n {
            mask[j] = false;
            mask[j * n] = false;
        }
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = TrainConfig {
            epochs: 10,
            ..TrainConfig::default()
        };
        Trainer::new(cfg)
            .fit_masked(&mut model, &samples, Some(&mask), &mut rng)
            .unwrap();
        for j in 1..n {
            assert_eq!(model.coupling().get(0, j), 0.0, "mask violated at (0,{j})");
        }
        assert!(model.nnz() > 0, "everything else should train");
    }

    #[test]
    fn empty_training_set_rejected() {
        let mut model = DsGlModel::new(VariableLayout::new(1, 2, 1));
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            Trainer::new(TrainConfig::default()).fit(&mut model, &[], &mut rng),
            Err(CoreError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn bad_mask_rejected() {
        let mut model = DsGlModel::new(VariableLayout::new(1, 2, 1));
        let samples = linear_samples(2, 4, 0);
        let mut rng = StdRng::seed_from_u64(0);
        let err = Trainer::new(TrainConfig::default())
            .fit_masked(&mut model, &samples, Some(&[true; 3]), &mut rng)
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig { .. }));
    }

    #[test]
    fn l1_sparsifies() {
        let samples = linear_samples(4, 40, 7);
        let layout = VariableLayout::new(1, 4, 1);
        let run = |l1: f64| {
            let mut model = DsGlModel::new(layout);
            let mut rng = StdRng::seed_from_u64(8);
            let cfg = TrainConfig {
                epochs: 25,
                l1,
                ..TrainConfig::default()
            };
            Trainer::new(cfg).fit(&mut model, &samples, &mut rng).unwrap();
            model.nnz()
        };
        assert!(run(5.0) < run(0.0), "L1 should remove couplings");
    }

    #[test]
    fn unfrozen_h_stays_negative() {
        // The paper-faithful mode trains h too; the h <= -h_min clamp
        // must hold throughout.
        let samples = linear_samples(4, 40, 11);
        let layout = VariableLayout::new(1, 4, 1);
        let mut model = DsGlModel::new(layout);
        let cfg = TrainConfig {
            epochs: 15,
            lr: 0.05,
            lr_decay: 0.98,
            freeze_h: false,
            ..TrainConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(12);
        let report = Trainer::new(cfg).fit(&mut model, &samples, &mut rng).unwrap();
        for &h in model.h() {
            assert!(h <= -cfg.h_min + 1e-12, "h = {h}");
        }
        assert!(report.final_loss() < report.epoch_losses[0]);
    }

    #[test]
    fn final_projection_enforces_contraction() {
        // Train free, then verify the one-time projection left every
        // target row within the margin.
        let samples = linear_samples(5, 40, 13);
        let layout = VariableLayout::new(1, 5, 1);
        let mut model = DsGlModel::new(layout);
        let cfg = TrainConfig {
            epochs: 20,
            lr: 0.08,
            lr_decay: 0.97,
            contraction_penalty: 0.0, // force the projection to do the work
            ..TrainConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(14);
        Trainer::new(cfg).fit(&mut model, &samples, &mut rng).unwrap();
        let target: Vec<usize> = layout.target_range().collect();
        for &v in &target {
            let row = model.coupling().row(v);
            let s: f64 = target.iter().filter(|&&u| u != v).map(|&u| row[u].abs()).sum();
            assert!(
                s <= cfg.contraction_margin * (-model.h()[v]) + 1e-6,
                "row {v}: {s} vs bound {}",
                cfg.contraction_margin * (-model.h()[v])
            );
        }
    }

    #[test]
    #[should_panic(expected = "contraction margin")]
    fn bad_margin_panics() {
        Trainer::new(TrainConfig {
            contraction_margin: 1.5,
            ..TrainConfig::default()
        });
    }
}
