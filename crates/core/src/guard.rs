//! Guarded annealing: detect bad runs, retry with escalating
//! mitigation, degrade gracefully instead of crashing.
//!
//! A production inference service cannot assume every annealing run is
//! healthy: injected hardware faults (see `dsgl_ising::fault`), an
//! integrator timestep past the Euler stability limit, or a starved
//! time budget all yield runs whose output is NaN, railed garbage, or
//! simply unconverged. [`GuardedAnneal`] wraps a run with three checks —
//! non-finite state, rail saturation of the free block, non-convergence
//! at budget — and on failure retries from the (sanitised) initial
//! state with an escalating mitigation ladder:
//!
//! 1. **halve `dt`** — fixes Euler instability, the most common cause;
//! 2. **strict fallback** — drops the event-driven adaptive engine for
//!    the bit-exact fixed-schedule integrator (or halves `dt` again if
//!    the run was already strict);
//! 3. **re-randomised restart** — redraws the free block, escaping a
//!    pathological initialisation.
//!
//! Each retry also stretches the time budget by the policy's backoff
//! factor. Every attempt is recorded in a [`HealthReport`]; when the
//! retry budget is exhausted the final state is sanitised (non-finite →
//! 0 V) and the report is marked **degraded** — callers always receive
//! finite output plus an honest account of how it was produced.
//!
//! The guard is free on healthy runs: a first attempt that passes all
//! checks consumes the RNG exactly like an unguarded run, so fault-free
//! guarded inference is bit-identical to today's strict results (locked
//! in by `tests/determinism.rs` and `tests/properties.rs`).

use crate::error::CoreError;
use crate::inference::window_seed;
use crate::model::DsGlModel;
use crate::telemetry::TelemetrySink;
use dsgl_data::Sample;
use dsgl_ising::fault::FaultModel;
use dsgl_ising::{AnnealConfig, AnnealReport, EngineMode, RealValuedDspu};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Bounds on the retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum retries after the first attempt (0 = fail fast).
    pub max_retries: usize,
    /// Time-budget multiplier applied on each retry (≥ 1 stretches the
    /// annealing budget so a slow-but-sound run can finish).
    pub backoff: f64,
}

impl Default for RetryPolicy {
    /// Three retries — one per mitigation rung — with a 2× budget
    /// stretch per retry.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff: 2.0,
        }
    }
}

/// Why an attempt was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureCause {
    /// The state contains NaN or ±∞ (fault injection, or an integrator
    /// blow-up past the rails' reach).
    NonFiniteState,
    /// The run missed the budget with most of the free block pinned at
    /// the rails — the signature of Euler instability, where voltages
    /// oscillate rail-to-rail instead of settling.
    RailSaturation,
    /// The run missed the budget without saturating: the dynamics are
    /// sound but too slow for the allotted time.
    NonConvergence,
    /// A supervisor fired the machine's
    /// [`CancelToken`](dsgl_ising::CancelToken) mid-run (watchdog on a
    /// hung anneal). The guard gives up immediately — tokens latch, so
    /// a retry would be cancelled on its first step too — and returns a
    /// sanitised, degraded result for the caller to replace (requeue or
    /// fallback).
    Cancelled,
}

/// What the guard changed before the next attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mitigation {
    /// Halved the integrator timestep.
    HalveDt,
    /// Fell back from the adaptive engine to the strict integrator.
    StrictFallback,
    /// Re-randomised the free block (consumes extra RNG draws).
    Rerandomize,
}

/// One rejected attempt, as recorded in a [`HealthReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Attempt {
    /// Why the attempt was rejected.
    pub cause: FailureCause,
    /// The mitigation applied before the next attempt (`None` when the
    /// retry budget was already exhausted).
    pub mitigation: Option<Mitigation>,
    /// Timestep the rejected attempt ran at, ns.
    pub dt_ns: f64,
    /// Time budget the rejected attempt ran under, ns.
    pub budget_ns: f64,
}

/// Health account of one guarded annealing run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HealthReport {
    /// Every rejected attempt, in order. Empty = clean first attempt.
    pub attempts: Vec<Attempt>,
    /// Retries consumed (`attempts.len()` capped by the policy).
    pub retries: usize,
    /// `true` when the returned state was produced by degradation — the
    /// retry budget ran out and non-finite values were forced to 0 V,
    /// or (at the facade level) faulted hardware outputs were re-clamped
    /// to fallback values — rather than by a healthy annealing run.
    pub degraded: bool,
    /// Non-finite state entries replaced across restarts and the final
    /// sanitisation pass.
    pub sanitized_nodes: usize,
    /// Output entries re-clamped to fallback values because their
    /// hardware resource is faulted (filled in by the mapped facade).
    pub fault_clamped: usize,
    /// Integration steps of the accepted (or final, when degraded)
    /// annealing attempt — the per-window cost metric.
    #[serde(default)]
    pub anneal_steps: usize,
    /// Simulated time of the accepted (or final) attempt in ns — the
    /// per-window latency metric.
    #[serde(default)]
    pub anneal_sim_time_ns: f64,
    /// `true` when the run was stopped by a supervisor's
    /// [`CancelToken`](dsgl_ising::CancelToken) rather than finishing
    /// on its own. Always paired with `degraded`: the returned state is
    /// whatever the integrator had reached, sanitised. Serving layers
    /// use this to tell "replace me" (requeue/fallback) apart from an
    /// ordinary degraded-but-final answer.
    #[serde(default)]
    pub cancelled: bool,
    /// Trace id of the [`TraceScope`](crate::tracing::TraceScope)
    /// attached to the machine that produced this run, 0 when tracing
    /// was off. Correlates a served response's health account with its
    /// span tree in the collector (the serving layer stamps the
    /// *primary* request's trace id on coalesced riders, since their
    /// answer came from that request's anneal).
    #[serde(default)]
    pub trace_id: u64,
}

impl HealthReport {
    /// Whether the run was clean: first attempt accepted, nothing
    /// degraded or patched.
    pub fn healthy(&self) -> bool {
        self.attempts.is_empty() && !self.degraded && self.fault_clamped == 0
    }
}

/// An [`AnnealConfig`] wrapped with health checks and a retry ladder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GuardedAnneal {
    /// The annealing configuration of the first attempt.
    pub anneal: AnnealConfig,
    /// Retry bounds and budget backoff.
    pub policy: RetryPolicy,
    /// Fraction of free nodes pinned at the rails above which a failed
    /// run is diagnosed as [`FailureCause::RailSaturation`] rather than
    /// plain non-convergence.
    pub saturation_limit: f64,
    /// Maximum instantaneous equilibrium residual (rail fractions per
    /// ns, see [`RealValuedDspu::max_free_rate`]) accepted from a run
    /// that *reports* convergence. The in-run rate check compares states
    /// a whole check window apart, so an even-period rail-to-rail
    /// oscillation — the signature of Euler instability — can alias to
    /// a zero rate and report converged; the residual is large at every
    /// point of such a cycle and exposes it. Legitimately railed
    /// equilibria pass: outward drive held by a rail counts as zero
    /// residual.
    pub residual_limit: f64,
}

impl GuardedAnneal {
    /// Guards `anneal` with the default policy, a 0.9 saturation limit,
    /// and a 1e-3 rail/ns residual limit (three orders of magnitude
    /// above the default convergence tolerance, but far below the
    /// residual of a rail-to-rail limit cycle).
    pub fn new(anneal: AnnealConfig) -> Self {
        GuardedAnneal {
            anneal,
            policy: RetryPolicy::default(),
            saturation_limit: 0.9,
            residual_limit: 1e-3,
        }
    }

    /// Replaces the retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Diagnoses the machine state after a run, `None` = healthy.
    /// (`&mut` only because the residual probe reuses the machine's
    /// pooled mat-vec buffer; observable state is untouched.)
    fn diagnose(&self, dspu: &mut RealValuedDspu, report: &AnnealReport) -> Option<FailureCause> {
        if dspu.state().iter().any(|v| !v.is_finite()) {
            return Some(FailureCause::NonFiniteState);
        }
        if report.converged && dspu.max_free_rate() <= self.residual_limit {
            return None;
        }
        let rail = dspu.rail();
        let (mut free, mut railed) = (0usize, 0usize);
        for (v, &is_free) in dspu.state().iter().zip(dspu.free_mask()) {
            if is_free {
                free += 1;
                if v.abs() >= rail {
                    railed += 1;
                }
            }
        }
        if free > 0 && railed as f64 / free as f64 > self.saturation_limit {
            Some(FailureCause::RailSaturation)
        } else {
            Some(FailureCause::NonConvergence)
        }
    }

    /// Runs guarded annealing on a prepared machine (inputs clamped,
    /// free block initialised, faults injected if any).
    ///
    /// A healthy first attempt consumes `rng` exactly like
    /// `dspu.run(&self.anneal, rng)` — the guard adds no draws — so
    /// fault-free guarded results are bit-identical to unguarded ones.
    /// On failure the machine is restored to its (sanitised) starting
    /// state and re-run under the next mitigation; after the last
    /// allowed retry fails, the final state is sanitised in place and
    /// the report comes back `degraded`. The returned state is always
    /// finite.
    pub fn run<R: Rng + ?Sized>(
        &self,
        dspu: &mut RealValuedDspu,
        rng: &mut R,
    ) -> (AnnealReport, HealthReport) {
        let mut initial = dspu.state().to_vec();
        for v in &mut initial {
            if !v.is_finite() {
                *v = 0.0; // last-known-good for a garbage readout
            }
        }
        let mut config = self.anneal;
        let mut health = HealthReport {
            trace_id: dspu.tracing().trace_id(),
            ..HealthReport::default()
        };
        loop {
            let attempt_start = dspu.tracing().start();
            let report = dspu.run(&config, rng);
            if dspu.cancel_requested() {
                // Tokens latch, so retrying under a fired token would
                // just burn attempts at zero steps each: give up now,
                // honestly flagged. The caller owns replacement policy.
                health.attempts.push(Attempt {
                    cause: FailureCause::Cancelled,
                    mitigation: None,
                    dt_ns: config.dt_ns,
                    budget_ns: config.max_time_ns,
                });
                health.cancelled = true;
                health.degraded = true;
                health.sanitized_nodes += dspu.sanitize(0.0);
                health.anneal_steps = report.steps;
                health.anneal_sim_time_ns = report.sim_time_ns;
                record_guard_metrics(dspu.telemetry(), &health);
                record_retry_span(dspu, attempt_start, &health);
                return (report, health);
            }
            let Some(cause) = self.diagnose(dspu, &report) else {
                health.anneal_steps = report.steps;
                health.anneal_sim_time_ns = report.sim_time_ns;
                record_guard_metrics(dspu.telemetry(), &health);
                return (report, health);
            };
            let out_of_retries = health.retries >= self.policy.max_retries;
            let mitigation = if out_of_retries {
                None
            } else {
                Some(match health.retries {
                    0 => Mitigation::HalveDt,
                    1 if matches!(config.mode, EngineMode::Adaptive { .. }) => {
                        Mitigation::StrictFallback
                    }
                    1 => Mitigation::HalveDt,
                    _ => Mitigation::Rerandomize,
                })
            };
            health.attempts.push(Attempt {
                cause,
                mitigation,
                dt_ns: config.dt_ns,
                budget_ns: config.max_time_ns,
            });
            record_retry_span(dspu, attempt_start, &health);
            let Some(mitigation) = mitigation else {
                health.degraded = true;
                health.sanitized_nodes += dspu.sanitize(0.0);
                health.anneal_steps = report.steps;
                health.anneal_sim_time_ns = report.sim_time_ns;
                record_guard_metrics(dspu.telemetry(), &health);
                return (report, health);
            };
            health.retries += 1;
            health.sanitized_nodes += dspu
                .state()
                .iter()
                .filter(|v| !v.is_finite())
                .count();
            // Restore the sanitised starting state; the free mask is
            // untouched by runs, so clamped and stuck nodes stay put.
            dspu.set_state(&initial)
                .expect("sanitised initial state is finite");
            match mitigation {
                Mitigation::HalveDt => config.dt_ns *= 0.5,
                Mitigation::StrictFallback => config.mode = EngineMode::Strict,
                Mitigation::Rerandomize => dspu.randomize_free(rng),
            }
            config.max_time_ns *= self.policy.backoff.max(1.0);
        }
    }
}

/// Records the `guard.*` instrument family for one completed guarded
/// run. Free when the sink is disabled (single branch, no allocation).
fn record_guard_metrics(sink: &TelemetrySink, health: &HealthReport) {
    if !sink.is_enabled() {
        return;
    }
    sink.counter_add("guard.runs", 1);
    sink.counter_add("guard.attempts", health.retries as u64 + 1);
    sink.counter_add("guard.retries", health.retries as u64);
    for attempt in &health.attempts {
        let name = match attempt.mitigation {
            Some(Mitigation::HalveDt) => "guard.retries.halve_dt",
            Some(Mitigation::StrictFallback) => "guard.retries.strict_fallback",
            Some(Mitigation::Rerandomize) => "guard.retries.rerandomize",
            None => continue,
        };
        sink.counter_add(name, 1);
    }
    if health.degraded {
        sink.counter_add("guard.degraded_runs", 1);
    }
    if health.cancelled {
        sink.counter_add("guard.cancelled_runs", 1);
    }
    sink.counter_add("guard.sanitized_nodes", health.sanitized_nodes as u64);
}

/// Records one `guard.retry` span for the latest rejected attempt in
/// `health`, into the machine's tracing scope. Called only after the
/// attempt's dynamics finished; a noop scope makes this a single branch
/// (the `start` is already `None`).
fn record_retry_span(
    dspu: &RealValuedDspu,
    start: Option<std::time::Instant>,
    health: &HealthReport,
) {
    let Some(attempt) = health.attempts.last() else {
        return;
    };
    dspu.tracing().record(
        "guard.retry",
        start,
        &[
            ("attempt", health.attempts.len() as f64),
            ("cause", cause_code(attempt.cause)),
            ("dt_ns", attempt.dt_ns),
            ("budget_ns", attempt.budget_ns),
        ],
    );
}

/// Stable numeric code of a [`FailureCause`] for span args (span args
/// are numeric by design).
fn cause_code(cause: FailureCause) -> f64 {
    match cause {
        FailureCause::NonFiniteState => 1.0,
        FailureCause::RailSaturation => 2.0,
        FailureCause::NonConvergence => 3.0,
        FailureCause::Cancelled => 4.0,
    }
}

/// Guarded counterpart of [`crate::inference::infer_dense`]: clamp
/// history, anneal under the guard, read the target block. The
/// prediction is always finite; consult the [`HealthReport`] for how it
/// was obtained.
///
/// # Errors
///
/// Returns shape mismatches and invalid-parameter errors.
pub fn infer_dense_guarded<R: Rng + ?Sized>(
    model: &DsGlModel,
    sample: &Sample,
    guard: &GuardedAnneal,
    rng: &mut R,
) -> Result<(Vec<f64>, AnnealReport, HealthReport), CoreError> {
    infer_dense_guarded_faulted(model, sample, guard, &FaultModel::none(), rng)
}

/// [`infer_dense_guarded`] with persistent hardware defects injected
/// into the machine before annealing — the software analogue of running
/// inference on a chip with stuck nodes, dead couplers, and drifted
/// conductances. A defect-free `faults` adds no RNG draws and changes
/// nothing.
///
/// # Errors
///
/// Returns shape mismatches, invalid parameters, and fault-model
/// validation errors.
pub fn infer_dense_guarded_faulted<R: Rng + ?Sized>(
    model: &DsGlModel,
    sample: &Sample,
    guard: &GuardedAnneal,
    faults: &FaultModel,
    rng: &mut R,
) -> Result<(Vec<f64>, AnnealReport, HealthReport), CoreError> {
    infer_dense_guarded_faulted_instrumented(
        model,
        sample,
        guard,
        faults,
        &TelemetrySink::noop(),
        rng,
    )
}

/// [`infer_dense_guarded_faulted`] with a [`TelemetrySink`] attached to
/// the per-window machine, so the run records the `anneal.*` and
/// `guard.*` instrument families. Passing a noop sink is exactly the
/// plain call; the sink never touches the RNG or the dynamics, so
/// results are bit-identical either way.
///
/// # Errors
///
/// Returns shape mismatches, invalid parameters, and fault-model
/// validation errors.
pub fn infer_dense_guarded_faulted_instrumented<R: Rng + ?Sized>(
    model: &DsGlModel,
    sample: &Sample,
    guard: &GuardedAnneal,
    faults: &FaultModel,
    sink: &TelemetrySink,
    rng: &mut R,
) -> Result<(Vec<f64>, AnnealReport, HealthReport), CoreError> {
    infer_dense_guarded_pooled(model, sample, guard, faults, sink, &mut None, rng)
}

/// [`infer_dense_guarded_faulted_instrumented`] with a caller-owned
/// scratch [`dsgl_ising::Workspace`] pool. The per-window machine adopts
/// the pooled workspace before annealing and returns it afterwards, so a
/// loop over windows pays the stage-buffer allocations once instead of
/// per window. Buffers carry capacity, never values, so a pooled call is
/// bit-identical to the plain one (`&mut None` *is* the plain call).
///
/// # Errors
///
/// Returns shape mismatches, invalid parameters, and fault-model
/// validation errors.
pub fn infer_dense_guarded_pooled<R: Rng + ?Sized>(
    model: &DsGlModel,
    sample: &Sample,
    guard: &GuardedAnneal,
    faults: &FaultModel,
    sink: &TelemetrySink,
    pool: &mut Option<dsgl_ising::Workspace>,
    rng: &mut R,
) -> Result<(Vec<f64>, AnnealReport, HealthReport), CoreError> {
    infer_dense_guarded_supervised(model, sample, guard, faults, sink, pool, None, rng)
}

/// [`infer_dense_guarded_pooled`] with an optional supervisor
/// [`CancelToken`](dsgl_ising::CancelToken) attached to the per-window
/// machine: a supervisor thread that fires the token stops the anneal
/// at its next integration step, and the returned [`HealthReport`]
/// comes back `cancelled` (and `degraded`) with a sanitised state. A
/// token that never fires is bit-invisible — `None` *is* the plain
/// pooled call.
///
/// # Errors
///
/// See [`infer_dense_guarded_pooled`].
#[allow(clippy::too_many_arguments)]
pub fn infer_dense_guarded_supervised<R: Rng + ?Sized>(
    model: &DsGlModel,
    sample: &Sample,
    guard: &GuardedAnneal,
    faults: &FaultModel,
    sink: &TelemetrySink,
    pool: &mut Option<dsgl_ising::Workspace>,
    cancel: Option<&dsgl_ising::CancelToken>,
    rng: &mut R,
) -> Result<(Vec<f64>, AnnealReport, HealthReport), CoreError> {
    infer_dense_guarded_traced(
        model,
        sample,
        guard,
        faults,
        sink,
        pool,
        cancel,
        &crate::tracing::TraceScope::noop(),
        rng,
    )
}

/// [`infer_dense_guarded_supervised`] with a
/// [`TraceScope`](crate::tracing::TraceScope) attached to the
/// per-window machine: the run records its `anneal.*` phase span and
/// any `guard.retry` spans into the scope's collector, and the returned
/// [`HealthReport`] carries the scope's trace id. A noop scope *is* the
/// plain supervised call — spans are recorded only after the dynamics
/// finish, so traced results are bit-identical either way.
///
/// # Errors
///
/// See [`infer_dense_guarded_pooled`].
#[allow(clippy::too_many_arguments)]
pub fn infer_dense_guarded_traced<R: Rng + ?Sized>(
    model: &DsGlModel,
    sample: &Sample,
    guard: &GuardedAnneal,
    faults: &FaultModel,
    sink: &TelemetrySink,
    pool: &mut Option<dsgl_ising::Workspace>,
    cancel: Option<&dsgl_ising::CancelToken>,
    scope: &crate::tracing::TraceScope,
    rng: &mut R,
) -> Result<(Vec<f64>, AnnealReport, HealthReport), CoreError> {
    infer_dense_guarded_warm_traced(
        model,
        sample,
        guard,
        faults,
        sink,
        pool,
        cancel,
        scope,
        crate::inference::WarmStart::Cold,
        rng,
    )
}

/// [`infer_dense_guarded_traced`] with a [`WarmStart`] policy applied to
/// the per-window machine.
///
/// Only [`WarmStart::Multigrid`] changes anything: the multigrid warm
/// start runs *after* machine construction (telemetry, tracing, cancel
/// token and workspace pool attached) and *before* fault injection and
/// the guard — so the guard's retry ladder captures the warmed state as
/// its restore point, and stuck-node faults override warm values exactly
/// as they override cold ones. [`WarmStart::Cold`] *is* the plain traced
/// call; [`WarmStart::Chained`] is per-batch chaining with no per-window
/// meaning, so a single guarded window treats it as cold.
///
/// When the warm start applies, the window also records
/// [`dsgl_ising::multigrid::instruments::FINE_STEPS_SAVED`] against the
/// guard's annealing budget.
///
/// # Errors
///
/// See [`infer_dense_guarded_pooled`].
#[allow(clippy::too_many_arguments)]
pub fn infer_dense_guarded_warm_traced<R: Rng + ?Sized>(
    model: &DsGlModel,
    sample: &Sample,
    guard: &GuardedAnneal,
    faults: &FaultModel,
    sink: &TelemetrySink,
    pool: &mut Option<dsgl_ising::Workspace>,
    cancel: Option<&dsgl_ising::CancelToken>,
    scope: &crate::tracing::TraceScope,
    warm: crate::inference::WarmStart,
    rng: &mut R,
) -> Result<(Vec<f64>, AnnealReport, HealthReport), CoreError> {
    infer_dense_guarded_warm_hier(
        model, sample, guard, faults, sink, pool, cancel, scope, warm, None, rng,
    )
}

/// [`infer_dense_guarded_warm_traced`] with an optional pre-built
/// multigrid hierarchy. The batch entry points build the Louvain
/// hierarchy once — it depends only on the coupling topology and clamp
/// mask, identical across a batch's windows — and pass it here;
/// `warm_start_with` on a cached hierarchy is bit-identical to the
/// one-shot `multigrid_warm_start`, and a hierarchy that does not match
/// the machine falls back to a cold start exactly like the one-shot.
#[allow(clippy::too_many_arguments)]
fn infer_dense_guarded_warm_hier<R: Rng + ?Sized>(
    model: &DsGlModel,
    sample: &Sample,
    guard: &GuardedAnneal,
    faults: &FaultModel,
    sink: &TelemetrySink,
    pool: &mut Option<dsgl_ising::Workspace>,
    cancel: Option<&dsgl_ising::CancelToken>,
    scope: &crate::tracing::TraceScope,
    warm: crate::inference::WarmStart,
    hierarchy: Option<&dsgl_ising::MultigridHierarchy>,
    rng: &mut R,
) -> Result<(Vec<f64>, AnnealReport, HealthReport), CoreError> {
    let mut dspu = crate::inference::machine_for_sample(model, sample, rng)?;
    dspu.set_telemetry(sink.clone());
    dspu.set_tracing(scope.clone());
    if let Some(token) = cancel {
        dspu.set_cancel(token.clone());
    }
    if let Some(ws) = pool.take() {
        dspu.adopt_workspace(ws);
    }
    let warmed = match warm {
        crate::inference::WarmStart::Multigrid { levels, coarse_tol } => {
            let opts = dsgl_ising::MultigridOptions { levels, coarse_tol };
            match hierarchy {
                Some(h) => {
                    dsgl_ising::multigrid::warm_start_with(&mut dspu, h, &opts, &guard.anneal)
                        .is_some()
                }
                None => dsgl_ising::multigrid::multigrid_warm_start(&mut dspu, &opts, &guard.anneal)
                    .is_some(),
            }
        }
        _ => false,
    };
    dspu.inject_faults(faults, rng)?;
    let (report, health) = guard.run(&mut dspu, rng);
    if warmed {
        crate::inference::record_fine_steps_saved(sink, &guard.anneal, &report);
    }
    let layout = model.layout();
    let pred = dspu.state()[layout.target_range()].to_vec();
    *pool = Some(dspu.take_workspace());
    Ok((pred, report, health))
}

/// Guarded counterpart of [`crate::inference::infer_batch`]: one
/// guarded machine per window, per-window RNG seeded from
/// `(master_seed, index)` exactly like the unguarded batch, so windows
/// whose guard never fires are bit-identical to `infer_batch` across
/// every [`crate::Threading`] policy.
///
/// # Errors
///
/// Returns [`CoreError::EmptyTrainingSet`] for an empty batch, or the
/// first per-window shape/parameter error in sample order.
pub fn infer_batch_guarded(
    model: &DsGlModel,
    samples: &[Sample],
    guard: &GuardedAnneal,
    master_seed: u64,
) -> Result<Vec<(Vec<f64>, AnnealReport, HealthReport)>, CoreError> {
    infer_batch_guarded_instrumented(model, samples, guard, master_seed, &TelemetrySink::noop())
}

/// [`infer_batch_guarded`] with a [`TelemetrySink`] shared across every
/// per-window machine. The registry behind the sink is thread-safe, so
/// windows annealed in parallel aggregate into the same instruments;
/// recording happens at window granularity (never inside the
/// integration loop), keeping contention negligible.
///
/// # Errors
///
/// Returns [`CoreError::EmptyTrainingSet`] for an empty batch, or the
/// first per-window shape/parameter error in sample order.
pub fn infer_batch_guarded_instrumented(
    model: &DsGlModel,
    samples: &[Sample],
    guard: &GuardedAnneal,
    master_seed: u64,
    sink: &TelemetrySink,
) -> Result<Vec<(Vec<f64>, AnnealReport, HealthReport)>, CoreError> {
    infer_batch_guarded_traced(
        model,
        samples,
        guard,
        master_seed,
        sink,
        &crate::tracing::TraceScope::noop(),
    )
}

/// [`infer_batch_guarded_instrumented`] with one
/// [`TraceScope`](crate::tracing::TraceScope) shared by every window's
/// machine: each window records its `anneal.*` phase span (and any
/// `guard.retry` spans) under the scope's trace and parent ids. The
/// collector behind the scope is thread-safe; a noop scope *is* the
/// plain instrumented call, bit for bit.
///
/// # Errors
///
/// Returns [`CoreError::EmptyTrainingSet`] for an empty batch, or the
/// first per-window shape/parameter error in sample order.
pub fn infer_batch_guarded_traced(
    model: &DsGlModel,
    samples: &[Sample],
    guard: &GuardedAnneal,
    master_seed: u64,
    sink: &TelemetrySink,
    scope: &crate::tracing::TraceScope,
) -> Result<Vec<(Vec<f64>, AnnealReport, HealthReport)>, CoreError> {
    infer_batch_guarded_warm_traced(
        model,
        samples,
        guard,
        master_seed,
        crate::inference::WarmStart::Cold,
        sink,
        scope,
    )
}

/// [`infer_batch_guarded_instrumented`] with a [`WarmStart`] policy
/// applied per window (see [`infer_dense_guarded_warm_traced`] for the
/// policy semantics — `Multigrid` warm-starts each window, `Cold` and
/// `Chained` behave as the plain guarded batch).
///
/// # Errors
///
/// Returns [`CoreError::EmptyTrainingSet`] for an empty batch, or the
/// first per-window shape/parameter error in sample order.
pub fn infer_batch_guarded_warm_instrumented(
    model: &DsGlModel,
    samples: &[Sample],
    guard: &GuardedAnneal,
    master_seed: u64,
    warm: crate::inference::WarmStart,
    sink: &TelemetrySink,
) -> Result<Vec<(Vec<f64>, AnnealReport, HealthReport)>, CoreError> {
    infer_batch_guarded_warm_traced(
        model,
        samples,
        guard,
        master_seed,
        warm,
        sink,
        &crate::tracing::TraceScope::noop(),
    )
}

/// [`infer_batch_guarded_traced`] with a [`WarmStart`] policy per
/// window. [`WarmStart::Cold`] *is* the plain traced batch.
///
/// # Errors
///
/// Returns [`CoreError::EmptyTrainingSet`] for an empty batch, or the
/// first per-window shape/parameter error in sample order.
pub fn infer_batch_guarded_warm_traced(
    model: &DsGlModel,
    samples: &[Sample],
    guard: &GuardedAnneal,
    master_seed: u64,
    warm: crate::inference::WarmStart,
    sink: &TelemetrySink,
    scope: &crate::tracing::TraceScope,
) -> Result<Vec<(Vec<f64>, AnnealReport, HealthReport)>, CoreError> {
    if samples.is_empty() {
        return Err(CoreError::EmptyTrainingSet);
    }
    let hierarchy = batch_hierarchy(model, samples, warm, window_seed(master_seed, 0));
    let total = model.layout().total();
    let work_per_window = total * total * 64;
    // Windows are grouped into small chunks so a scratch workspace can
    // migrate machine-to-machine inside each chunk (only its first
    // window pays the stage-buffer allocations). Every window still gets
    // its own `(master_seed, index)` RNG and workspace buffers carry
    // capacity, never values, so results stay bit-identical to the
    // per-window formulation across every [`crate::Threading`] policy.
    let chunk = GUARD_POOL_CHUNK;
    let n_chunks = samples.len().div_ceil(chunk);
    let chunks = crate::threading::par_map(n_chunks, chunk * work_per_window, |c| {
        use rand::SeedableRng;
        let lo = c * chunk;
        let hi = (lo + chunk).min(samples.len());
        let mut pool: Option<dsgl_ising::Workspace> = None;
        let mut out = Vec::with_capacity(hi - lo);
        for (i, sample) in samples.iter().enumerate().take(hi).skip(lo) {
            let mut rng =
                rand::rngs::StdRng::seed_from_u64(window_seed(master_seed, i as u64));
            out.push(infer_dense_guarded_warm_hier(
                model,
                sample,
                guard,
                &FaultModel::none(),
                sink,
                &mut pool,
                None,
                scope,
                warm,
                hierarchy.as_ref(),
                &mut rng,
            ));
        }
        out
    });
    chunks.into_iter().flatten().collect()
}

/// Builds the batch-shared multigrid hierarchy when the policy is
/// [`WarmStart::Multigrid`](crate::inference::WarmStart::Multigrid): a
/// throwaway probe machine for the first sample supplies the coupling
/// topology and clamp mask, both identical across the batch's windows.
/// Returns `None` for every other policy, for an unbuildable hierarchy,
/// or when the probe cannot be constructed — each window then falls
/// back exactly as the one-shot warm start would.
fn batch_hierarchy(
    model: &DsGlModel,
    samples: &[Sample],
    warm: crate::inference::WarmStart,
    probe_seed: u64,
) -> Option<dsgl_ising::MultigridHierarchy> {
    use rand::SeedableRng;
    let crate::inference::WarmStart::Multigrid { levels, coarse_tol } = warm else {
        return None;
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(probe_seed);
    let probe = crate::inference::machine_for_sample(model, samples.first()?, &mut rng).ok()?;
    dsgl_ising::multigrid::build_hierarchy(
        &probe,
        &dsgl_ising::MultigridOptions { levels, coarse_tol },
    )
}

/// Windows per workspace-pooling chunk in
/// [`infer_batch_guarded_instrumented`]: small enough that batches keep
/// saturating the thread pool, large enough to amortise the first
/// window's workspace warm-up across the rest of the chunk.
const GUARD_POOL_CHUNK: usize = 8;

/// [`infer_batch_guarded_instrumented`] with an explicit RNG seed and a
/// shared fault model per window — the serving-layer entry point behind
/// `dsgl-serve`'s request coalescing.
///
/// Window `i` anneals exactly as the single-window guarded batch
/// `infer_batch_guarded(model, &samples[i..=i], guard, seeds[i])` would
/// anneal its only window: its RNG is seeded from
/// `window_seed(seeds[i], 0)`, it cold-starts, and `faults` are
/// injected into its machine before the guard runs. Because every
/// window is a pure function of `(model, sample, guard, faults, seed)`,
/// grouping requests into one coalesced call can never change a single
/// output bit relative to executing them one at a time — the contract
/// the serving layer's determinism suite pins.
///
/// # Errors
///
/// Returns [`CoreError::EmptyTrainingSet`] for an empty batch, a
/// [`CoreError::SampleShapeMismatch`] when `seeds` and `samples`
/// disagree in length, or the first per-window shape/parameter error in
/// sample order.
pub fn infer_batch_guarded_seeded_instrumented(
    model: &DsGlModel,
    samples: &[Sample],
    guard: &GuardedAnneal,
    seeds: &[u64],
    faults: &FaultModel,
    sink: &TelemetrySink,
) -> Result<Vec<(Vec<f64>, AnnealReport, HealthReport)>, CoreError> {
    infer_batch_guarded_seeded_pooled(model, samples, guard, seeds, faults, sink, &mut None)
}

/// [`infer_batch_guarded_seeded_instrumented`] with a caller-owned
/// scratch [`dsgl_ising::Workspace`] pool that survives the call: a
/// long-lived serving worker passes the same pool into every coalesced
/// batch, so only its very first window ever pays the stage-buffer
/// allocations. Buffers carry capacity, never values, so the pooled
/// call is bit-identical to the plain one (`&mut None` *is* the plain
/// call).
///
/// Batches no larger than the internal pooling chunk run on the calling
/// thread with the caller's pool; larger batches split across the
/// thread pool in fixed chunks (the caller's pool then seeds the first
/// chunk only). Either way results are bit-identical across every
/// [`crate::Threading`] policy.
///
/// # Errors
///
/// See [`infer_batch_guarded_seeded_instrumented`].
pub fn infer_batch_guarded_seeded_pooled(
    model: &DsGlModel,
    samples: &[Sample],
    guard: &GuardedAnneal,
    seeds: &[u64],
    faults: &FaultModel,
    sink: &TelemetrySink,
    pool: &mut Option<dsgl_ising::Workspace>,
) -> Result<Vec<(Vec<f64>, AnnealReport, HealthReport)>, CoreError> {
    infer_batch_guarded_seeded_supervised(model, samples, guard, seeds, faults, sink, pool, None)
}

/// [`infer_batch_guarded_seeded_pooled`] with an optional supervisor
/// [`CancelToken`](dsgl_ising::CancelToken) attached to every window's
/// machine (including lockstep probes and their serial rebuilds): one
/// token cancels the whole coalesced batch, which is exactly the
/// granularity a serving worker owns. Windows cancelled mid-anneal come
/// back `cancelled` + `degraded` in their [`HealthReport`]; windows
/// that finished before the token fired keep their ordinary results.
/// `None` *is* the plain pooled call, bit for bit.
///
/// # Errors
///
/// See [`infer_batch_guarded_seeded_instrumented`].
#[allow(clippy::too_many_arguments)]
pub fn infer_batch_guarded_seeded_supervised(
    model: &DsGlModel,
    samples: &[Sample],
    guard: &GuardedAnneal,
    seeds: &[u64],
    faults: &FaultModel,
    sink: &TelemetrySink,
    pool: &mut Option<dsgl_ising::Workspace>,
    cancel: Option<&dsgl_ising::CancelToken>,
) -> Result<Vec<(Vec<f64>, AnnealReport, HealthReport)>, CoreError> {
    infer_batch_guarded_seeded_traced(model, samples, guard, seeds, faults, sink, pool, cancel, &[])
}

/// [`infer_batch_guarded_seeded_supervised`] with one
/// [`TraceScope`](crate::tracing::TraceScope) per window (aligned with
/// `samples`; an empty slice means every window is untraced, and *is*
/// the plain supervised call). Window `i`'s machine records its
/// `anneal.{strict,adaptive,lockstep}` phase span and any `guard.retry`
/// spans into `scopes[i]`, and its [`HealthReport`] carries that
/// scope's trace id — the hook `dsgl-serve` uses to parent per-window
/// spans under the owning request's `serve.batch` span. Spans are
/// recorded only after dynamics finish, so traced results stay
/// bit-identical to untraced ones.
///
/// # Errors
///
/// See [`infer_batch_guarded_seeded_instrumented`]; additionally a
/// non-empty `scopes` must match `samples` in length.
#[allow(clippy::too_many_arguments)]
pub fn infer_batch_guarded_seeded_traced(
    model: &DsGlModel,
    samples: &[Sample],
    guard: &GuardedAnneal,
    seeds: &[u64],
    faults: &FaultModel,
    sink: &TelemetrySink,
    pool: &mut Option<dsgl_ising::Workspace>,
    cancel: Option<&dsgl_ising::CancelToken>,
    scopes: &[crate::tracing::TraceScope],
) -> Result<Vec<(Vec<f64>, AnnealReport, HealthReport)>, CoreError> {
    infer_batch_guarded_seeded_warm_traced(
        model,
        samples,
        guard,
        seeds,
        faults,
        sink,
        pool,
        cancel,
        scopes,
        crate::inference::WarmStart::Cold,
    )
}

/// [`infer_batch_guarded_seeded_traced`] with a [`WarmStart`] policy
/// per window — the serving-layer entry point when multigrid warm
/// starts are enabled in `ServeConfig`.
///
/// Every window remains a pure function of
/// `(model, sample, guard, faults, seed, warm)`: the multigrid warm
/// start is seeded internally and draws nothing from the per-window
/// RNG, so coalescing requests into one batch still cannot change a
/// single output bit. The lockstep fast path only fuses cold windows;
/// any other policy runs the serial per-window path.
///
/// # Errors
///
/// See [`infer_batch_guarded_seeded_instrumented`]; additionally a
/// non-empty `scopes` must match `samples` in length.
#[allow(clippy::too_many_arguments)]
pub fn infer_batch_guarded_seeded_warm_traced(
    model: &DsGlModel,
    samples: &[Sample],
    guard: &GuardedAnneal,
    seeds: &[u64],
    faults: &FaultModel,
    sink: &TelemetrySink,
    pool: &mut Option<dsgl_ising::Workspace>,
    cancel: Option<&dsgl_ising::CancelToken>,
    scopes: &[crate::tracing::TraceScope],
    warm: crate::inference::WarmStart,
) -> Result<Vec<(Vec<f64>, AnnealReport, HealthReport)>, CoreError> {
    if !scopes.is_empty() && scopes.len() != samples.len() {
        return Err(CoreError::SampleShapeMismatch {
            what: "per-window trace scope list",
            expected: samples.len(),
            actual: scopes.len(),
        });
    }
    if samples.is_empty() {
        return Err(CoreError::EmptyTrainingSet);
    }
    if seeds.len() != samples.len() {
        return Err(CoreError::SampleShapeMismatch {
            what: "per-window seed list",
            expected: samples.len(),
            actual: seeds.len(),
        });
    }
    // Lockstep fast path: when the whole coalesced batch is eligible,
    // fuse every window's mat-vecs into one GEMM per integrator stage.
    // Faults that alter the coupling (dead couplers, drift) make the
    // per-window matrices diverge, so only coupling-preserving fault
    // models qualify; `run_lockstep` re-checks everything else.
    if samples.len() >= 2
        && warm == crate::inference::WarmStart::Cold
        && faults.dead_couplers.is_empty()
        && faults.coupler_drift == 0.0
        && crate::inference::lockstep_precheck(model, &guard.anneal)
    {
        if let Some(out) = lockstep_guarded_batch(
            model, samples, guard, seeds, faults, sink, pool, cancel, scopes,
        )? {
            return Ok(out);
        }
    }
    let hierarchy = batch_hierarchy(model, samples, warm, window_seed(seeds[0], 0));
    let run_window = |i: usize, pool: &mut Option<dsgl_ising::Workspace>| {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(window_seed(seeds[i], 0));
        let noop = crate::tracing::TraceScope::noop();
        let scope = scopes.get(i).unwrap_or(&noop);
        infer_dense_guarded_warm_hier(
            model,
            &samples[i],
            guard,
            faults,
            sink,
            pool,
            cancel,
            scope,
            warm,
            hierarchy.as_ref(),
            &mut rng,
        )
    };
    if samples.len() <= GUARD_POOL_CHUNK {
        let mut out = Vec::with_capacity(samples.len());
        for i in 0..samples.len() {
            out.push(run_window(i, pool)?);
        }
        return Ok(out);
    }
    let total = model.layout().total();
    let work_per_window = total * total * 64;
    let chunk = GUARD_POOL_CHUNK;
    let n_chunks = samples.len().div_ceil(chunk);
    let first = std::mem::take(pool);
    let first = std::sync::Mutex::new(Some(first));
    let chunks = crate::threading::par_map(n_chunks, chunk * work_per_window, |c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(samples.len());
        // Chunk 0 adopts the caller's long-lived pool; other chunks
        // warm up their own (capacity only — results are unchanged).
        let mut local: Option<dsgl_ising::Workspace> = if c == 0 {
            first.lock().unwrap_or_else(|e| e.into_inner()).take().flatten()
        } else {
            None
        };
        let mut out = Vec::with_capacity(hi - lo);
        for i in lo..hi {
            out.push(run_window(i, &mut local));
        }
        if c == 0 {
            *first.lock().unwrap_or_else(|e| e.into_inner()) = Some(local);
        }
        out
    });
    *pool = first
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .flatten();
    chunks.into_iter().flatten().collect()
}

/// One guarded window's outcome: prediction, annealing report, health.
type GuardedWindow = (Vec<f64>, AnnealReport, HealthReport);

/// Lockstep fast path of [`infer_batch_guarded_seeded_pooled`]: builds
/// every window's machine with exactly the per-window RNG draws of the
/// serial path, advances all of them in one batched integration (see
/// `dsgl_ising::lockstep`), and accepts each window whose diagnosis is
/// clean — accounting for it precisely as a clean serial `guard.run`
/// first attempt would (same [`AnnealReport`], same healthy
/// [`HealthReport`], same `anneal.*` / `guard.*` telemetry).
///
/// `Ok(None)` means the batch turned out lockstep-ineligible (sparse
/// coupling, differing couplings, …): the probe machines are discarded
/// — they recorded no telemetry — and the caller runs the serial path,
/// which rebuilds them under the same seeds and therefore counts
/// everything exactly once.
///
/// Windows the guard rejects fall back individually: the machine is
/// rebuilt from scratch under the same seed and the full retry ladder
/// runs serially. A strict noiseless attempt consumes no RNG, so the
/// rebuilt machine's first attempt replays the lockstep integration
/// bit-for-bit and the ladder proceeds exactly as an all-serial window.
#[allow(clippy::too_many_arguments)]
fn lockstep_guarded_batch(
    model: &DsGlModel,
    samples: &[Sample],
    guard: &GuardedAnneal,
    seeds: &[u64],
    faults: &FaultModel,
    sink: &TelemetrySink,
    pool: &mut Option<dsgl_ising::Workspace>,
    cancel: Option<&dsgl_ising::CancelToken>,
    scopes: &[crate::tracing::TraceScope],
) -> Result<Option<Vec<GuardedWindow>>, CoreError> {
    use rand::SeedableRng;
    let mut machines = Vec::with_capacity(samples.len());
    for (i, sample) in samples.iter().enumerate() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(window_seed(seeds[i], 0));
        let mut dspu = crate::inference::machine_for_sample(model, sample, &mut rng)?;
        dspu.set_telemetry(sink.clone());
        if let Some(scope) = scopes.get(i) {
            dspu.set_tracing(scope.clone());
        }
        if let Some(token) = cancel {
            dspu.set_cancel(token.clone());
        }
        dspu.inject_faults(faults, &mut rng)?;
        machines.push(dspu);
    }
    let mut ws = pool.take().unwrap_or_default();
    let reports = dsgl_ising::run_lockstep(&mut machines, &guard.anneal, &mut ws);
    *pool = Some(ws);
    let Some(reports) = reports else {
        return Ok(None);
    };
    if sink.is_enabled() {
        sink.counter_add("anneal.lockstep_batches", 1);
        sink.counter_add("anneal.lockstep_windows", machines.len() as u64);
    }
    let layout = model.layout();
    let mut out = Vec::with_capacity(machines.len());
    for (i, (mut dspu, report)) in machines.into_iter().zip(reports).enumerate() {
        if guard.diagnose(&mut dspu, &report).is_none() {
            dspu.record_anneal(&report);
            let health = HealthReport {
                anneal_steps: report.steps,
                anneal_sim_time_ns: report.sim_time_ns,
                trace_id: dspu.tracing().trace_id(),
                ..HealthReport::default()
            };
            record_guard_metrics(dspu.telemetry(), &health);
            out.push((dspu.state()[layout.target_range()].to_vec(), report, health));
        } else {
            if sink.is_enabled() {
                sink.counter_add("anneal.lockstep_retries", 1);
            }
            drop(dspu);
            let mut rng = rand::rngs::StdRng::seed_from_u64(window_seed(seeds[i], 0));
            let mut fresh = crate::inference::machine_for_sample(model, &samples[i], &mut rng)?;
            fresh.set_telemetry(sink.clone());
            if let Some(scope) = scopes.get(i) {
                fresh.set_tracing(scope.clone());
            }
            if let Some(token) = cancel {
                // A latched token makes the rebuild return immediately
                // (zero steps) with a `cancelled` report, so a watchdog
                // cancellation drains the whole batch fast.
                fresh.set_cancel(token.clone());
            }
            fresh.inject_faults(faults, &mut rng)?;
            let (retried, health) = guard.run(&mut fresh, &mut rng);
            out.push((fresh.state()[layout.target_range()].to_vec(), retried, health));
        }
    }
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::{infer_batch, infer_dense, machine_for_sample};
    use crate::model::VariableLayout;
    use dsgl_ising::fault::StuckNode;
    use dsgl_ising::Coupling;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn linear_model(n: usize) -> (DsGlModel, Sample) {
        let layout = VariableLayout::new(1, n, 1);
        let mut model = DsGlModel::new(layout);
        model.init_persistence(0.6);
        let sample = Sample {
            history: (0..n).map(|i| 0.1 + 0.05 * i as f64).collect(),
            target: vec![0.0; n],
        };
        (model, sample)
    }

    /// A hand-built machine whose Euler dynamics are unstable at the
    /// given `dt` but stable at `dt/2`: two free nodes coupled at 1.5
    /// with `h = -2`, `C = 100` ⇒ stiffest eigenvalue 3.5/100, Euler
    /// stability bound `dt < 2·100/3.5 ≈ 57 ns`.
    fn stiff_machine(seed: u64) -> RealValuedDspu {
        let mut j = Coupling::zeros(3);
        j.set(0, 1, 1.0);
        j.set(1, 2, 1.5);
        let mut d = RealValuedDspu::new(j, vec![-2.0; 3]).unwrap();
        d.clamp(0, 0.8).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        d.randomize_free(&mut rng);
        d
    }

    #[test]
    fn healthy_run_is_bit_identical_to_unguarded() {
        let (model, sample) = linear_model(4);
        let guard = GuardedAnneal::new(AnnealConfig::default());
        let guarded = {
            let mut rng = StdRng::seed_from_u64(7);
            let (pred, report, health) =
                infer_dense_guarded(&model, &sample, &guard, &mut rng).unwrap();
            assert!(health.healthy(), "health: {health:?}");
            // Identical RNG consumption: the next draw matches too.
            (pred, report, rng.random::<f64>())
        };
        let unguarded = {
            let mut rng = StdRng::seed_from_u64(7);
            let (pred, report) =
                infer_dense(&model, &sample, &AnnealConfig::default(), &mut rng).unwrap();
            (pred, report, rng.random::<f64>())
        };
        assert_eq!(guarded.0, unguarded.0, "predictions must match bitwise");
        assert_eq!(guarded.1, unguarded.1, "reports must match");
        assert_eq!(guarded.2, unguarded.2, "RNG stream must stay in sync");
    }

    #[test]
    fn recovers_from_injected_nan() {
        // Fault scenario 1: a stuck-at-NaN node contaminates the run;
        // the guard sanitises and retries to a finite answer.
        let (model, sample) = linear_model(4);
        let guard = GuardedAnneal::new(AnnealConfig::default());
        let faults = FaultModel {
            stuck_nodes: vec![StuckNode {
                idx: model.layout().history_len(), // first target node
                value: f64::NAN,
            }],
            ..FaultModel::none()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let (pred, _, health) =
            infer_dense_guarded_faulted(&model, &sample, &guard, &faults, &mut rng).unwrap();
        assert!(pred.iter().all(|p| p.is_finite()), "prediction: {pred:?}");
        assert!(!health.attempts.is_empty(), "guard must have fired");
        assert_eq!(health.attempts[0].cause, FailureCause::NonFiniteState);
        assert!(health.sanitized_nodes > 0);
    }

    #[test]
    fn recovers_from_euler_instability_by_halving_dt() {
        // Fault scenario 2: dt past the stability bound rails the free
        // block; one HalveDt retry brings it under the bound.
        let mut d = stiff_machine(5);
        let config = AnnealConfig {
            dt_ns: 80.0,
            max_time_ns: 4_000.0,
            ..AnnealConfig::default()
        };
        // Unguarded, dt=80 falls into a period-2 rail-to-rail limit
        // cycle. Worse, the 10-step check window aliases the even-period
        // oscillation to a zero rate, so the run *claims* convergence —
        // the instantaneous residual is what exposes the lie.
        let mut probe = d.clone();
        let mut rng = StdRng::seed_from_u64(6);
        let unguarded = probe.run(&config, &mut rng);
        assert!(
            !unguarded.converged || probe.max_free_rate() > 1e-3,
            "dt=80 must be unstable here: residual {}",
            probe.max_free_rate()
        );
        // Guarded, it recovers.
        let guard = GuardedAnneal::new(config);
        let mut rng = StdRng::seed_from_u64(6);
        let (report, health) = guard.run(&mut d, &mut rng);
        assert!(report.converged, "guard must recover: {health:?}");
        assert!(!health.degraded);
        assert!(health.retries >= 1);
        assert_eq!(
            health.attempts[0].mitigation,
            Some(Mitigation::HalveDt)
        );
        // Fixed point: σ1 = (1.0·0.8 + 1.5·σ2)/2, σ2 = 1.5·σ1/2.
        let s1 = 0.4 / (1.0 - 1.5 * 1.5 / 4.0);
        assert!((d.state()[1] - s1).abs() < 1e-2, "σ1 = {}", d.state()[1]);
    }

    #[test]
    fn degrades_gracefully_when_retries_exhausted() {
        // Fault scenario 3: a permanently-stuck NaN that re-contaminates
        // every retry. The guard must exhaust its budget, sanitise, and
        // return finite output flagged degraded.
        let mut j = Coupling::zeros(3);
        j.set(0, 1, 0.5);
        j.set(1, 2, 0.5);
        let mut d = RealValuedDspu::new(j, vec![-1.5; 3]).unwrap();
        d.clamp(0, 0.6).unwrap();
        let faults = FaultModel {
            stuck_nodes: vec![StuckNode {
                idx: 2,
                value: f64::NAN,
            }],
            ..FaultModel::none()
        };
        let mut rng = StdRng::seed_from_u64(8);
        d.randomize_free(&mut rng);
        d.inject_faults(&faults, &mut rng).unwrap();
        // The restart state sanitises node 2 to 0.0, but the stuck node
        // is not free, so it stays 0.0 after restore — retries then
        // actually succeed. To force exhaustion, forbid retries.
        let guard = GuardedAnneal::new(AnnealConfig::default()).with_policy(RetryPolicy {
            max_retries: 0,
            backoff: 1.0,
        });
        let (report, health) = guard.run(&mut d, &mut rng);
        assert!(health.degraded, "health: {health:?}");
        assert_eq!(health.retries, 0);
        assert_eq!(health.attempts.len(), 1);
        assert_eq!(health.attempts[0].mitigation, None);
        assert!(d.state().iter().all(|v| v.is_finite()), "output sanitised");
        assert!(health.sanitized_nodes > 0);
        let _ = report;
    }

    #[test]
    fn slow_run_diagnosed_as_nonconvergence_and_backoff_extends_budget() {
        let (model, sample) = linear_model(4);
        let mut rng = StdRng::seed_from_u64(9);
        let mut d = machine_for_sample(&model, &sample, &mut rng).unwrap();
        // A budget far too small to converge, backoff 4× per retry.
        let guard = GuardedAnneal::new(AnnealConfig::with_budget(20.0)).with_policy(RetryPolicy {
            max_retries: 4,
            backoff: 4.0,
        });
        let (report, health) = guard.run(&mut d, &mut rng);
        assert!(report.converged, "backoff should rescue it: {health:?}");
        assert!(!health.degraded);
        assert!(health
            .attempts
            .iter()
            .all(|a| a.cause == FailureCause::NonConvergence));
        // Budgets grow monotonically across attempts.
        for w in health.attempts.windows(2) {
            assert!(w[1].budget_ns > w[0].budget_ns);
        }
    }

    #[test]
    fn adaptive_guard_falls_back_to_strict() {
        // Retry rung 2 on an adaptive config must switch to Strict.
        let mut d = stiff_machine(11);
        let config = AnnealConfig {
            dt_ns: 80.0,
            max_time_ns: 150.0, // also starved, so HalveDt alone fails
            mode: dsgl_ising::EngineMode::adaptive(),
            ..AnnealConfig::default()
        };
        let guard = GuardedAnneal::new(config);
        let mut rng = StdRng::seed_from_u64(12);
        let (_, health) = guard.run(&mut d, &mut rng);
        if health.retries >= 2 {
            assert_eq!(
                health.attempts[1].mitigation,
                Some(Mitigation::StrictFallback)
            );
        }
        assert!(d.state().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn unfired_cancel_token_is_bit_invisible() {
        let (model, sample) = linear_model(4);
        let guard = GuardedAnneal::new(AnnealConfig::default());
        let sink = TelemetrySink::noop();
        let plain = {
            let mut rng = StdRng::seed_from_u64(21);
            infer_dense_guarded_pooled(
                &model,
                &sample,
                &guard,
                &FaultModel::none(),
                &sink,
                &mut None,
                &mut rng,
            )
            .unwrap()
        };
        let supervised = {
            let mut rng = StdRng::seed_from_u64(21);
            let token = dsgl_ising::CancelToken::new();
            infer_dense_guarded_supervised(
                &model,
                &sample,
                &guard,
                &FaultModel::none(),
                &sink,
                &mut None,
                Some(&token),
                &mut rng,
            )
            .unwrap()
        };
        assert_eq!(plain.0, supervised.0, "prediction bits must match");
        assert_eq!(plain.1, supervised.1);
        assert_eq!(plain.2, supervised.2);
        assert!(plain.2.healthy());
    }

    #[test]
    fn fired_token_yields_cancelled_degraded_health_without_retries() {
        let (model, sample) = linear_model(4);
        let guard = GuardedAnneal::new(AnnealConfig::default());
        let token = dsgl_ising::CancelToken::new();
        token.cancel(); // pre-fired: the run stops at its first step
        let mut rng = StdRng::seed_from_u64(22);
        let (pred, report, health) = infer_dense_guarded_supervised(
            &model,
            &sample,
            &guard,
            &FaultModel::none(),
            &TelemetrySink::noop(),
            &mut None,
            Some(&token),
            &mut rng,
        )
        .unwrap();
        assert!(health.cancelled, "health: {health:?}");
        assert!(health.degraded);
        assert!(!health.healthy());
        assert_eq!(health.retries, 0, "guard must not burn retries on a latched token");
        assert_eq!(health.attempts.len(), 1);
        assert_eq!(health.attempts[0].cause, FailureCause::Cancelled);
        assert_eq!(health.attempts[0].mitigation, None);
        assert!(!report.converged);
        assert_eq!(report.steps, 0, "latched token stops before the first step");
        assert!(pred.iter().all(|v| v.is_finite()), "output stays sanitised");
    }

    #[test]
    fn supervised_batch_with_unfired_token_matches_plain_batch() {
        let layout = VariableLayout::new(1, 4, 1);
        let mut model = DsGlModel::new(layout);
        model.init_persistence(0.65);
        let windows: Vec<Sample> = (0..6)
            .map(|i| Sample {
                history: vec![0.03 * i as f64; 4],
                target: vec![0.0; 4],
            })
            .collect();
        let seeds: Vec<u64> = (0..6).map(|i| 500 + 11 * i as u64).collect();
        let guard = GuardedAnneal::new(AnnealConfig::default());
        let sink = TelemetrySink::noop();
        let plain = infer_batch_guarded_seeded_pooled(
            &model,
            &windows,
            &guard,
            &seeds,
            &FaultModel::none(),
            &sink,
            &mut None,
        )
        .unwrap();
        let token = dsgl_ising::CancelToken::new();
        let supervised = infer_batch_guarded_seeded_supervised(
            &model,
            &windows,
            &guard,
            &seeds,
            &FaultModel::none(),
            &sink,
            &mut None,
            Some(&token),
        )
        .unwrap();
        for (k, ((pa, ra, ha), (pb, rb, hb))) in plain.iter().zip(&supervised).enumerate() {
            assert_eq!(pa, pb, "window {k} diverged under an unfired token");
            assert_eq!(ra, rb);
            assert_eq!(ha, hb);
        }
        // A pre-fired token marks every window cancelled.
        let fired = dsgl_ising::CancelToken::new();
        fired.cancel();
        let cancelled = infer_batch_guarded_seeded_supervised(
            &model,
            &windows,
            &guard,
            &seeds,
            &FaultModel::none(),
            &sink,
            &mut None,
            Some(&fired),
        )
        .unwrap();
        for (k, (_, _, h)) in cancelled.iter().enumerate() {
            assert!(h.cancelled, "window {k} must be cancelled: {h:?}");
        }
    }

    #[test]
    fn seeded_batch_is_bit_identical_to_single_window_batches() {
        let layout = VariableLayout::new(1, 4, 1);
        let mut model = DsGlModel::new(layout);
        model.init_persistence(0.65);
        let windows: Vec<Sample> = (0..12)
            .map(|i| Sample {
                history: vec![0.04 * i as f64; 4],
                target: vec![0.0; 4],
            })
            .collect();
        let seeds: Vec<u64> = (0..12).map(|i| 1000 + 37 * i as u64).collect();
        let guard = GuardedAnneal::new(AnnealConfig::default());
        let sink = TelemetrySink::noop();
        let coalesced = infer_batch_guarded_seeded_instrumented(
            &model,
            &windows,
            &guard,
            &seeds,
            &FaultModel::none(),
            &sink,
        )
        .unwrap();
        // The serial reference: each request executed alone, as a
        // single-window guarded batch under its own master seed.
        for (k, ((pred, report, health), seed)) in coalesced.iter().zip(&seeds).enumerate() {
            let alone = infer_batch_guarded_instrumented(
                &model,
                &windows[k..=k],
                &guard,
                *seed,
                &sink,
            )
            .unwrap();
            assert_eq!(pred, &alone[0].0, "window {k} diverged from serial run");
            assert_eq!(report, &alone[0].1);
            assert_eq!(health, &alone[0].2);
        }
        // A persistent caller pool never changes bits either.
        let mut pool = None;
        let pooled = infer_batch_guarded_seeded_pooled(
            &model,
            &windows,
            &guard,
            &seeds,
            &FaultModel::none(),
            &sink,
            &mut pool,
        )
        .unwrap();
        assert!(pool.is_some(), "pool must survive the call");
        for ((a, _, _), (b, _, _)) in coalesced.iter().zip(&pooled) {
            assert_eq!(a, b);
        }
        // Shape errors: seed list must match the batch.
        assert!(matches!(
            infer_batch_guarded_seeded_instrumented(
                &model,
                &windows,
                &guard,
                &seeds[..3],
                &FaultModel::none(),
                &sink,
            ),
            Err(CoreError::SampleShapeMismatch { .. })
        ));
        assert!(matches!(
            infer_batch_guarded_seeded_instrumented(
                &model,
                &[],
                &guard,
                &[],
                &FaultModel::none(),
                &sink,
            ),
            Err(CoreError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn seeded_batch_injects_faults_per_window_deterministically() {
        let layout = VariableLayout::new(1, 4, 1);
        let mut model = DsGlModel::new(layout);
        model.init_persistence(0.6);
        let windows: Vec<Sample> = (0..4)
            .map(|i| Sample {
                history: vec![0.1 + 0.02 * i as f64; 4],
                target: vec![0.0; 4],
            })
            .collect();
        let seeds: Vec<u64> = (0..4).map(|i| 77 + i as u64).collect();
        let faults = FaultModel {
            stuck_nodes: vec![StuckNode {
                idx: model.layout().history_len(),
                value: f64::NAN,
            }],
            coupler_drift: 0.02,
            ..FaultModel::none()
        };
        let guard = GuardedAnneal::new(AnnealConfig::default()).with_policy(RetryPolicy {
            max_retries: 1,
            backoff: 1.0,
        });
        let sink = TelemetrySink::noop();
        let a = infer_batch_guarded_seeded_instrumented(
            &model, &windows, &guard, &seeds, &faults, &sink,
        )
        .unwrap();
        let b = infer_batch_guarded_seeded_instrumented(
            &model, &windows, &guard, &seeds, &faults, &sink,
        )
        .unwrap();
        for (k, ((pa, _, ha), (pb, _, hb))) in a.iter().zip(&b).enumerate() {
            assert!(pa.iter().all(|v| v.is_finite()), "window {k} not sanitised");
            assert_eq!(pa, pb, "faulted window {k} must be seed-deterministic");
            assert_eq!(ha, hb);
            assert!(!ha.healthy(), "NaN stuck node must show up in health");
        }
    }

    #[test]
    fn batch_guarded_matches_unguarded_batch() {
        let layout = VariableLayout::new(1, 3, 1);
        let mut model = DsGlModel::new(layout);
        model.init_persistence(0.7);
        let windows: Vec<Sample> = (0..6)
            .map(|i| Sample {
                history: vec![0.05 * i as f64; 3],
                target: vec![0.0; 3],
            })
            .collect();
        let guard = GuardedAnneal::new(AnnealConfig::default());
        let guarded = infer_batch_guarded(&model, &windows, &guard, 13).unwrap();
        let plain = infer_batch(&model, &windows, &AnnealConfig::default(), 13).unwrap();
        assert_eq!(guarded.len(), plain.len());
        for ((gp, gr, gh), (pp, pr)) in guarded.iter().zip(&plain) {
            assert!(gh.healthy());
            assert_eq!(gp, pp, "fault-free guarded batch must match bitwise");
            assert_eq!(gr, pr);
        }
        assert!(matches!(
            infer_batch_guarded(&model, &[], &guard, 0),
            Err(CoreError::EmptyTrainingSet)
        ));
    }

    /// 48 free targets in three blocks of 16 with intra-block coupling
    /// structure, so the Louvain coarsener has something to find.
    fn community_setup(seed: u64) -> (DsGlModel, Vec<Sample>) {
        let n = 48;
        let layout = VariableLayout::new(1, n, 1);
        let mut model = DsGlModel::new(layout);
        let mut rng = StdRng::seed_from_u64(seed);
        {
            let j = model.coupling_mut();
            for b in 0..3 {
                let (lo, hi) = (b * 16, (b + 1) * 16);
                for a in lo..hi {
                    for c in (a + 1)..hi {
                        if rng.random::<f64>() < 0.4 {
                            j.set(n + a, n + c, 0.2 + 0.2 * rng.random::<f64>());
                        }
                    }
                }
            }
            for b in 0..2 {
                j.set(n + (b + 1) * 16 - 1, n + (b + 1) * 16, 0.05);
            }
            for i in 0..n {
                j.set(i, n + i, 0.6);
            }
        }
        let row_sums: Vec<f64> = (0..2 * n).map(|v| model.coupling().row_abs_sum(v)).collect();
        for (v, sum) in row_sums.into_iter().enumerate() {
            model.h_mut()[v] = -(1.0 + sum);
        }
        let windows: Vec<Sample> = (0..6)
            .map(|_| Sample {
                history: (0..n).map(|_| rng.random::<f64>() * 0.8 - 0.4).collect(),
                target: vec![0.0; n],
            })
            .collect();
        (model, windows)
    }

    #[test]
    fn guarded_multigrid_batch_matches_unguarded_multigrid() {
        // Fault-free guarded inference with a multigrid warm start must
        // stay a zero-cost wrapper: every prediction bit-identical to
        // the unguarded multigrid batch, with clean health.
        let (model, windows) = community_setup(31);
        let cfg = AnnealConfig::default();
        let guard = GuardedAnneal::new(cfg);
        let warm = crate::inference::WarmStart::Multigrid {
            levels: 1,
            coarse_tol: 1e-3,
        };
        let sink = TelemetrySink::noop();
        let guarded =
            infer_batch_guarded_warm_instrumented(&model, &windows, &guard, 13, warm, &sink)
                .unwrap();
        let plain =
            crate::inference::infer_batch_warm(&model, &windows, &cfg, 13, warm).unwrap();
        assert_eq!(guarded.len(), plain.len());
        for ((gp, _, gh), (pp, _)) in guarded.iter().zip(&plain) {
            assert!(gh.healthy(), "guard fired on healthy hardware: {gh:?}");
            assert_eq!(gh.retries, 0);
            assert_eq!(gp, pp, "guarded multigrid batch must match bitwise");
        }
        // Reruns reproduce bits, including under sequential threading.
        let again = crate::Threading::Sequential
            .install(|| {
                infer_batch_guarded_warm_instrumented(&model, &windows, &guard, 13, warm, &sink)
            })
            .unwrap();
        for ((gp, _, _), (ap, _, _)) in guarded.iter().zip(&again) {
            assert_eq!(gp, ap, "guarded multigrid must be thread-count independent");
        }
    }

    #[test]
    fn guarded_chained_warm_start_is_treated_as_cold() {
        // Chained warm starts couple windows, which the guarded batch
        // cannot honour per-window; it must silently run cold rather
        // than produce order-dependent bits.
        let (model, windows) = community_setup(32);
        let cfg = AnnealConfig::default();
        let guard = GuardedAnneal::new(cfg);
        let sink = TelemetrySink::noop();
        let chained = infer_batch_guarded_warm_instrumented(
            &model,
            &windows,
            &guard,
            17,
            crate::inference::WarmStart::Chained { chunk: 3 },
            &sink,
        )
        .unwrap();
        let cold = infer_batch_guarded_warm_instrumented(
            &model,
            &windows,
            &guard,
            17,
            crate::inference::WarmStart::Cold,
            &sink,
        )
        .unwrap();
        for ((cp, _, _), (kp, _, _)) in chained.iter().zip(&cold) {
            assert_eq!(cp, kp, "chained must degrade to cold in the guarded batch");
        }
    }
}
