//! Decomposing dense dynamical systems into sparse, hardware-mappable
//! ones (paper Sec. IV.B, Fig. 5).
//!
//! The pipeline has the paper's three steps:
//!
//! 1. **Sparsify**: prune the dense coupling matrix to a target
//!    communication-demand density `D`, keeping the strongest couplings;
//! 2. **Cluster & redistribute**: extract communities from the pruned
//!    matrix with Louvain and pack them onto the PE grid
//!    (capacity-aware, locality-preserving — see
//!    [`dsgl_graph::Partitioner`]);
//! 3. **Fine-tune with patterns**: build the structural mask of the
//!    chosen interconnect pattern (plus wormholes for outlier demand),
//!    zero everything outside it, and re-train the surviving couplings
//!    under the mask to restore accuracy.

use crate::error::CoreError;
use crate::model::DsGlModel;
use crate::patterns::{
    build_mask, masked_weight_fraction, plan_wormholes, PatternKind, WormholeSet,
};
use crate::trainer::{TrainConfig, Trainer};
use dsgl_data::Sample;
use dsgl_graph::{GraphBuilder, Louvain, Partitioner};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the decomposition pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecomposeConfig {
    /// Target coupling density `D` after pruning (fraction of pairs).
    pub density: f64,
    /// Inter-PE interconnect pattern.
    pub pattern: PatternKind,
    /// Maximum number of wormhole super-connections.
    pub wormhole_budget: usize,
    /// Per-PE node capacity `K`.
    pub pe_capacity: usize,
    /// PE grid shape `(rows, cols)`.
    pub grid: (usize, usize),
    /// Fine-tune configuration (`None` skips step 3 — used by the
    /// ablation study).
    pub finetune: Option<TrainConfig>,
}

impl DecomposeConfig {
    /// A reasonable default for a model of `total` variables: density
    /// 0.1, DMesh with 4 wormholes, and the smallest square grid of
    /// capacity-`K` PEs that fits.
    pub fn fitting(total: usize, pe_capacity: usize) -> Self {
        let pes_needed = total.div_ceil(pe_capacity);
        let side = (pes_needed as f64).sqrt().ceil() as usize;
        DecomposeConfig {
            density: 0.1,
            pattern: PatternKind::DMesh,
            wormhole_budget: 4,
            pe_capacity,
            grid: (side, side.max(1)),
            finetune: Some(TrainConfig {
                epochs: 10,
                ..TrainConfig::default()
            }),
        }
    }
}

/// Decomposition diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecomposeStats {
    /// Communities Louvain found in the pruned coupling graph.
    pub communities: usize,
    /// Density after pruning, before masking.
    pub pruned_density: f64,
    /// Density after masking (what the hardware must carry).
    pub final_density: f64,
    /// Fraction of pruned coupling magnitude the pattern mask removed
    /// (before fine-tuning won it back).
    pub mask_removed_weight: f64,
    /// Fraction of remaining couplings that cross PEs.
    pub cross_pe_fraction: f64,
    /// Wormholes actually planned.
    pub wormholes_used: usize,
}

/// A dense model decomposed onto a PE grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecomposedModel {
    /// The masked (and optionally fine-tuned) model.
    pub model: DsGlModel,
    /// PE hosting each variable.
    pub var_to_pe: Vec<usize>,
    /// PE grid shape.
    pub grid: (usize, usize),
    /// Per-PE capacity the placement respects.
    pub pe_capacity: usize,
    /// The interconnect pattern.
    pub pattern: PatternKind,
    /// Planned wormhole super-connections.
    pub wormholes: WormholeSet,
    /// Diagnostics.
    pub stats: DecomposeStats,
}

impl DecomposedModel {
    /// Number of PEs on the grid.
    pub fn pe_count(&self) -> usize {
        self.grid.0 * self.grid.1
    }

    /// Variables hosted on `pe`, ascending.
    pub fn vars_on(&self, pe: usize) -> Vec<usize> {
        self.var_to_pe
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p == pe)
            .map(|(v, _)| v)
            .collect()
    }

    /// Couplings that cross PEs, as `(var_i, var_j, weight)`.
    pub fn cross_pe_couplings(&self) -> Vec<(usize, usize, f64)> {
        self.model
            .coupling()
            .nonzeros()
            .into_iter()
            .filter(|&(i, j, _)| self.var_to_pe[i] != self.var_to_pe[j])
            .collect()
    }
}

/// Runs the full decomposition pipeline on a trained dense model.
///
/// `finetune_samples` is used only when `config.finetune` is set.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for a density outside `(0, 1]`
/// or a grid that cannot hold the model, and any fine-tuning error.
pub fn decompose<R: Rng + ?Sized>(
    dense: &DsGlModel,
    finetune_samples: &[Sample],
    config: &DecomposeConfig,
    rng: &mut R,
) -> Result<DecomposedModel, CoreError> {
    if !(config.density > 0.0 && config.density <= 1.0) {
        return Err(CoreError::InvalidConfig {
            reason: format!("density {} outside (0, 1]", config.density),
        });
    }
    let total = dense.layout().total();
    let capacity = config.pe_capacity * config.grid.0 * config.grid.1;
    if total > capacity {
        return Err(CoreError::InvalidConfig {
            reason: format!("{total} variables exceed grid capacity {capacity}"),
        });
    }

    // Step 1: prune to the communication-demand density D.
    let mut model = dense.clone();
    model.coupling_mut().prune_to_density(config.density);
    let pruned_density = model.density();

    // Step 2: extract communities from |J| and redistribute onto PEs.
    let mut builder = GraphBuilder::new(total);
    for (i, j, w) in model.coupling().nonzeros() {
        builder.add_edge(i, j, w.abs())?;
    }
    let graph = builder.build();
    let communities = Louvain::new().run(&graph, rng);
    let placement =
        Partitioner::new(config.pe_capacity, config.grid).place_with_graph(&communities, &graph)?;
    let var_to_pe: Vec<usize> = (0..total).map(|v| placement.pe_of(v)).collect();

    // Step 3: mask to the pattern (with wormholes) and fine-tune.
    let wormholes = plan_wormholes(
        model.coupling(),
        &var_to_pe,
        config.grid,
        config.pattern,
        config.wormhole_budget,
    );
    let mask = build_mask(total, &var_to_pe, config.grid, config.pattern, &wormholes);
    let mask_removed_weight = masked_weight_fraction(model.coupling(), &mask);
    model.coupling_mut().apply_mask(&mask);

    if let Some(ft) = &config.finetune {
        if !finetune_samples.is_empty() {
            // Fine-tune only the couplings that survived pruning AND the
            // pattern: the communication-demand density D is a hardware
            // budget, so the sparsity structure is pinned and only the
            // surviving weights are re-calibrated (paper: non-zeros
            // outside the region are eliminated "due to the pre-set
            // communication demand density D").
            let mut tune_mask = vec![false; total * total];
            for (i, j, _) in model.coupling().nonzeros() {
                tune_mask[i * total + j] = true;
                tune_mask[j * total + i] = true;
            }
            Trainer::new(*ft).fit_masked(&mut model, finetune_samples, Some(&tune_mask), rng)?;
        }
    }

    let nnz = model.nnz().max(1);
    let cross = model
        .coupling()
        .nonzeros()
        .iter()
        .filter(|&&(i, j, _)| var_to_pe[i] != var_to_pe[j])
        .count();
    let stats = DecomposeStats {
        communities: communities.count(),
        pruned_density,
        final_density: model.density(),
        mask_removed_weight,
        cross_pe_fraction: cross as f64 / nnz as f64,
        wormholes_used: wormholes.len(),
    };
    Ok(DecomposedModel {
        model,
        var_to_pe,
        grid: config.grid,
        pe_capacity: config.pe_capacity,
        pattern: config.pattern,
        wormholes,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VariableLayout;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn dense_model(nodes: usize, seed: u64) -> (DsGlModel, Vec<Sample>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<Sample> = (0..40)
            .map(|_| {
                let hist: Vec<f64> = (0..nodes).map(|_| rng.random::<f64>() * 0.8).collect();
                let target: Vec<f64> = (0..nodes)
                    .map(|i| 0.6 * hist[i] + 0.2 * hist[(i + 1) % nodes])
                    .collect();
                Sample {
                    history: hist,
                    target,
                }
            })
            .collect();
        let layout = VariableLayout::new(1, nodes, 1);
        let mut model = DsGlModel::new(layout);
        let cfg = TrainConfig {
            epochs: 40,
            lr: 0.05,
            lr_decay: 0.98,
            ..TrainConfig::default()
        };
        Trainer::new(cfg)
            .fit(&mut model, &samples, &mut rng)
            .unwrap();
        (model, samples)
    }

    fn small_config() -> DecomposeConfig {
        DecomposeConfig {
            density: 0.3,
            pattern: PatternKind::Mesh,
            wormhole_budget: 2,
            pe_capacity: 6,
            grid: (2, 2),
            finetune: Some(TrainConfig {
                epochs: 8,
                ..TrainConfig::default()
            }),
        }
    }

    #[test]
    fn pipeline_produces_mappable_model() {
        let (dense, samples) = dense_model(8, 1); // 16 variables
        let mut rng = StdRng::seed_from_u64(2);
        let d = decompose(&dense, &samples, &small_config(), &mut rng).unwrap();
        // Density budget respected.
        assert!(d.model.density() <= 0.3 + 1e-9, "density {}", d.model.density());
        // Placement covers all variables within capacity.
        assert_eq!(d.var_to_pe.len(), 16);
        for pe in 0..d.pe_count() {
            assert!(d.vars_on(pe).len() <= 6);
        }
        // Every surviving coupling honours the pattern or a wormhole.
        for (i, j, _) in d.model.coupling().nonzeros() {
            let (pa, pb) = (d.var_to_pe[i], d.var_to_pe[j]);
            let ok = crate::patterns::pe_allowed(d.pattern, d.grid, pa, pb)
                || d.wormholes.contains(&(pa.min(pb), pa.max(pb)));
            assert!(ok, "coupling {i}-{j} crosses forbidden PEs {pa}-{pb}");
        }
    }

    #[test]
    fn finetune_restores_accuracy() {
        let (dense, samples) = dense_model(8, 3);
        let base = Trainer::regression_rmse(&dense, &samples).unwrap();
        let mut cfg = small_config();
        cfg.density = 0.15;
        let mut rng = StdRng::seed_from_u64(4);
        cfg.finetune = None;
        let raw = decompose(&dense, &samples, &cfg, &mut StdRng::seed_from_u64(4)).unwrap();
        let raw_rmse = Trainer::regression_rmse(&raw.model, &samples).unwrap();
        cfg.finetune = Some(TrainConfig {
            epochs: 15,
            ..TrainConfig::default()
        });
        let tuned = decompose(&dense, &samples, &cfg, &mut rng).unwrap();
        let tuned_rmse = Trainer::regression_rmse(&tuned.model, &samples).unwrap();
        assert!(
            tuned_rmse <= raw_rmse + 1e-9,
            "fine-tune should help: raw {raw_rmse}, tuned {tuned_rmse}"
        );
        assert!(tuned_rmse >= base - 1e-9 || tuned_rmse < 0.1);
    }

    #[test]
    fn invalid_configs_rejected() {
        let (dense, samples) = dense_model(8, 5);
        let mut rng = StdRng::seed_from_u64(0);
        let mut cfg = small_config();
        cfg.density = 0.0;
        assert!(matches!(
            decompose(&dense, &samples, &cfg, &mut rng),
            Err(CoreError::InvalidConfig { .. })
        ));
        let mut cfg = small_config();
        cfg.pe_capacity = 1; // 4 PEs * 1 < 16 vars
        assert!(matches!(
            decompose(&dense, &samples, &cfg, &mut rng),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn fitting_config_covers_model() {
        let cfg = DecomposeConfig::fitting(100, 30);
        assert!(cfg.pe_capacity * cfg.grid.0 * cfg.grid.1 >= 100);
    }

    #[test]
    fn stats_are_consistent() {
        let (dense, samples) = dense_model(8, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let d = decompose(&dense, &samples, &small_config(), &mut rng).unwrap();
        assert!(d.stats.communities >= 1);
        assert!(d.stats.final_density <= d.stats.pruned_density + 1e-9);
        assert!((0.0..=1.0).contains(&d.stats.mask_removed_weight));
        assert!((0.0..=1.0).contains(&d.stats.cross_pe_fraction));
        assert!(d.stats.wormholes_used <= 2);
        assert_eq!(
            d.cross_pe_couplings().len(),
            (d.stats.cross_pe_fraction * d.model.nnz() as f64).round() as usize
        );
    }
}
