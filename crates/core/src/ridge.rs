//! Closed-form ridge fitting of DS-GL models.
//!
//! The teacher-forced training objective (paper Eq. 10) is *linear* in
//! the couplings: each target variable is regressed on the others with
//! weights `wᵥⱼ = Jᵥⱼ / (-hᵥ)`. Gradient descent (see
//! [`crate::Trainer`]) is the paper-faithful route, but the exact
//! minimiser is available in closed form via the ridge-regularised
//! normal equations — one Gram matrix shared across all target rows,
//! one Cholesky factorisation, one triangular solve per row. This is
//! both far faster and statistically stronger, and its masked variant
//! is the natural fine-tuner after decomposition: re-solving the
//! least-squares problem restricted to the surviving couplings is the
//! *optimal* re-calibration the paper's fine-tuning step approximates.
//!
//! Couplings between two target variables are not fitted (each target is
//! predicted from the observed history block), which keeps `J` exactly
//! symmetric, makes every target row trivially contractive, and matches
//! how the baselines consume the same windows.

use crate::error::CoreError;
use crate::model::DsGlModel;
use crate::telemetry::TelemetrySink;
use crate::windows::full_state;
use dsgl_data::Sample;
use dsgl_nn::linalg::{cholesky, cholesky_solve, ridge_solve};
use dsgl_nn::Matrix;

/// Cholesky factor of `G + λI`, escalating `λ` by 10× until the
/// factorisation succeeds (mirrors [`ridge_solve`]'s policy).
///
/// # Errors
///
/// Returns [`CoreError::FactorisationFailed`] when seven escalations
/// still leave the matrix unfactorisable (degenerate or non-finite
/// training data).
fn factor_with_escalation(
    gram: &Matrix,
    lambda: f64,
    sink: &TelemetrySink,
) -> Result<Matrix, CoreError> {
    let n = gram.rows();
    let mut lam = lambda.max(1e-12);
    for attempt in 0..7u64 {
        let mut a = gram.clone();
        for i in 0..n {
            a.set(i, i, a.get(i, i) + lam);
        }
        if let Some(l) = cholesky(&a) {
            if attempt > 0 {
                sink.counter_add("train.ridge_escalations", attempt);
            }
            return Ok(l);
        }
        lam *= 10.0;
    }
    sink.counter_add("train.ridge_escalations", 7);
    Err(CoreError::FactorisationFailed { lambda: lam / 10.0 })
}

/// Fits `model`'s couplings by closed-form ridge regression of each
/// target variable on the history block, regularised *toward the
/// model's current weights*: the penalty is `λ·‖w - w₀‖²` with
/// `w₀ᵥⱼ = Jᵥⱼ/(-hᵥ)` taken from the incoming model. With a
/// persistence-initialised model this shrinks the underdetermined
/// directions toward the persistence predictor instead of toward zero,
/// which is a far better prior for temporal data.
///
/// Existing couplings are overwritten; target–target couplings are
/// zeroed. `h` is left untouched (the fitted weights are scaled by
/// `|hᵥ|` so the machine's fixed point reproduces the regression).
///
/// # Errors
///
/// Returns [`CoreError::EmptyTrainingSet`], a shape mismatch, or
/// [`CoreError::FactorisationFailed`] when the Gram matrix cannot be
/// factorised even with escalated regularisation (e.g. non-finite
/// sample values).
pub fn fit_ridge(
    model: &mut DsGlModel,
    samples: &[Sample],
    lambda: f64,
) -> Result<(), CoreError> {
    fit_ridge_instrumented(model, samples, lambda, &TelemetrySink::noop())
}

/// [`fit_ridge`] with a [`TelemetrySink`]: records `train.ridge_fits`,
/// `train.ridge_solves` (one per target row), `train.ridge_escalations`
/// (λ escalations needed to factorise), and the wall-clock
/// `train.phase.ridge_ns` span. The sink never influences the solve, so
/// fitted weights are bit-identical with or without it.
///
/// # Errors
///
/// Same as [`fit_ridge`].
pub fn fit_ridge_instrumented(
    model: &mut DsGlModel,
    samples: &[Sample],
    lambda: f64,
    sink: &TelemetrySink,
) -> Result<(), CoreError> {
    if samples.is_empty() {
        return Err(CoreError::EmptyTrainingSet);
    }
    let _span = sink.time_phase("train.phase.ridge_ns");
    let layout = model.layout();
    let hist = layout.history_len();
    let n_samples = samples.len();

    // Design matrix X: samples × history variables.
    let mut x = Matrix::zeros(n_samples, hist);
    let mut targets = Matrix::zeros(n_samples, layout.target_len());
    for (r, s) in samples.iter().enumerate() {
        let state = full_state(&layout, s)?;
        x.row_mut(r).copy_from_slice(&state[..hist]);
        targets.row_mut(r).copy_from_slice(&state[hist..]);
    }
    // Shared Gram matrix, factorised once and reused for every target
    // row: the whole fit is one Cholesky plus one triangular solve per
    // row. The SYRK path computes only the upper triangle and mirrors
    // it — half the multiplies of the general product, bit-identical
    // values (products commute, so (i,j) and (j,i) accumulate the same
    // bits).
    let gram = x.gram_t();
    sink.counter_add("train.gram_syrk", 1);
    let xty = x.t_matmul(&targets); // hist × frame_len
    let factor = factor_with_escalation(&gram, lambda, sink)?;

    // Per-target rows are independent: each reads only its own row of
    // the incoming model and the shared factorisation, so the solves
    // run in parallel (bit-identical to the serial order) and only the
    // writes below touch the model.
    let solved: Vec<(usize, Vec<f64>)> = {
        let model_ref: &DsGlModel = model;
        let targets_idx: Vec<usize> = layout.target_range().collect();
        crate::threading::par_map(targets_idx.len(), hist * hist, |t_idx| {
            let v = targets_idx[t_idx];
            let q = -model_ref.h()[v];
            let b: Vec<f64> = (0..hist)
                .map(|j| xty.get(j, t_idx) + lambda * model_ref.coupling().get(v, j) / q)
                .collect();
            let w = cholesky_solve(&factor, &b)
                .iter()
                .map(|&wj| wj * q)
                .collect();
            (v, w)
        })
    };
    for (v, w) in solved {
        for (j, &wj) in w.iter().enumerate() {
            model.coupling_mut().set(v, j, wj);
        }
        // No target-target couplings in the ridge fit.
        for u in layout.target_range() {
            if u != v {
                model.coupling_mut().set(v, u, 0.0);
            }
        }
    }
    sink.counter_add("train.ridge_fits", 1);
    sink.counter_add("train.ridge_solves", layout.target_len() as u64);
    Ok(())
}

/// Re-fits only the *currently nonzero* history couplings of each target
/// row (closed-form masked ridge, regularised toward the current
/// weights): the optimal re-calibration after pruning/masking removed
/// couplings. Target–target couplings present in
/// the support are refitted too, treating the teacher-forced ground
/// truth of the other targets as additional regressors; the symmetric
/// entry is shared (fitted from the lower-indexed row).
///
/// # Errors
///
/// Returns [`CoreError::EmptyTrainingSet`] or a shape mismatch.
pub fn refit_ridge_masked(
    model: &mut DsGlModel,
    samples: &[Sample],
    lambda: f64,
) -> Result<(), CoreError> {
    refit_ridge_masked_instrumented(model, samples, lambda, &TelemetrySink::noop())
}

/// [`refit_ridge_masked`] with a [`TelemetrySink`] (see
/// [`fit_ridge_instrumented`]).
///
/// # Errors
///
/// Same as [`refit_ridge_masked`].
pub fn refit_ridge_masked_instrumented(
    model: &mut DsGlModel,
    samples: &[Sample],
    lambda: f64,
    sink: &TelemetrySink,
) -> Result<(), CoreError> {
    if samples.is_empty() {
        return Err(CoreError::EmptyTrainingSet);
    }
    let _span = sink.time_phase("train.phase.ridge_ns");
    let layout = model.layout();
    let total = layout.total();
    let n_samples = samples.len();

    // Full teacher-forced design matrix: samples × all variables.
    let mut x = Matrix::zeros(n_samples, total);
    for (r, s) in samples.iter().enumerate() {
        let state = full_state(&layout, s)?;
        x.row_mut(r).copy_from_slice(&state);
    }
    let gram = x.gram_t(); // total × total, symmetric half-cost product
    sink.counter_add("train.gram_syrk", 1);

    let target_start = layout.history_len();
    // Each row's support (`j < target_start || j > v`) never includes a
    // slot another row writes, so the per-row solves read a consistent
    // snapshot of the model and run in parallel; only the writes below
    // mutate it.
    let solved: Vec<(usize, Vec<usize>, Vec<f64>)> = {
        let model_ref: &DsGlModel = model;
        let targets_idx: Vec<usize> = layout.target_range().collect();
        crate::threading::par_map(targets_idx.len(), total * total, |t_idx| {
            let v = targets_idx[t_idx];
            // Support: currently coupled variables. Target–target pairs
            // are owned by the lower-indexed row to preserve symmetry.
            let support: Vec<usize> = (0..total)
                .filter(|&j| j != v && model_ref.coupling().get(v, j) != 0.0)
                .filter(|&j| j < target_start || j > v)
                .collect();
            if support.is_empty() {
                return (v, support, Vec::new());
            }
            let k = support.len();
            let mut g = Matrix::zeros(k, k);
            for (a, &ja) in support.iter().enumerate() {
                for (b, &jb) in support.iter().enumerate() {
                    g.set(a, b, gram.get(ja, jb));
                }
            }
            let q = -model_ref.h()[v];
            let b: Vec<f64> = support
                .iter()
                .map(|&j| gram.get(j, v) + lambda * model_ref.coupling().get(v, j) / q)
                .collect();
            let w = ridge_solve(&g, &b, lambda)
                .iter()
                .map(|&wj| wj * q)
                .collect();
            (v, support, w)
        })
    };
    for (v, support, w) in solved {
        for (&j, &wj) in support.iter().zip(&w) {
            model.coupling_mut().set(v, j, wj);
        }
    }
    sink.counter_add("train.ridge_fits", 1);
    sink.counter_add("train.ridge_solves", layout.target_len() as u64);
    Ok(())
}

/// Programs the target block as a *Gaussian graphical model* of the
/// stage-1 residuals: estimates the residual covariance, inverts it to
/// the precision matrix `Θ`, and sets
///
/// ```text
/// J[v][u]    = -s·Θ[v][u]          (target-target couplings)
/// h[v]       = -s·Θ[v][v]          (self-reactions; Θ is PD so h < 0)
/// J[v][hist] =  s·(Θ·W_h)[v]       (history rows re-combined)
/// ```
///
/// With this programming the machine's energy is exactly the Gaussian
/// negative log-density of the residual field, so its equilibrium is the
/// exact conditional mean for *any* observation pattern: clamping no
/// targets reproduces stage-1 forecasting unchanged, while clamping a
/// subset (imputation — the paper's core GL definition) lets observed
/// outputs correct their correlated unobserved peers through the
/// coupling network. Real data has common shocks, so this joint
/// relaxation is exactly the advantage a physical dynamical system has
/// over per-node predictors.
///
/// `shrinkage` in `[0, 1)` mixes the sample covariance toward its
/// diagonal before inversion (estimation stability); `scale` sets the
/// overall conductance `s` so that the mean `|h|` equals it (keeping the
/// machine's time constants in the same regime as stage 1).
///
/// Call once, directly after [`fit_ridge`]; gate on a validation set
/// with [`crate::inference::infer_fixed_point_imputation`].
///
/// # Errors
///
/// Returns [`CoreError::EmptyTrainingSet`] or a shape mismatch, and
/// [`CoreError::InvalidConfig`] for parameters out of range.
pub fn fit_gaussian_couplings(
    model: &mut DsGlModel,
    samples: &[Sample],
    shrinkage: f64,
    scale: f64,
) -> Result<(), CoreError> {
    if samples.is_empty() {
        return Err(CoreError::EmptyTrainingSet);
    }
    if !(0.0..1.0).contains(&shrinkage)
        || scale.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
    {
        return Err(CoreError::InvalidConfig {
            reason: format!("shrinkage {shrinkage} or scale {scale} out of range"),
        });
    }
    let layout = model.layout();
    let t_len = layout.target_len();
    let hist = layout.history_len();
    let n_samples = samples.len();

    // Stage-1 residual matrix R: samples x targets.
    let mut r = Matrix::zeros(n_samples, t_len);
    for (row, s) in samples.iter().enumerate() {
        let state = full_state(&layout, s)?;
        for (t_idx, v) in layout.target_range().enumerate() {
            r.set(row, t_idx, state[v] - model.regress_one(&state, v));
        }
    }
    // Shrunk covariance (symmetric half-cost Gram product).
    let mut sigma = r.gram_t().scale(1.0 / n_samples as f64);
    for i in 0..t_len {
        for j in 0..t_len {
            if i != j {
                sigma.set(i, j, sigma.get(i, j) * (1.0 - shrinkage));
            }
        }
        sigma.set(i, i, sigma.get(i, i).max(1e-10));
    }
    // Precision matrix via Cholesky: Θ column-by-column.
    let factor = factor_with_escalation(&sigma, 1e-10, &TelemetrySink::noop())?;
    let mut theta = Matrix::zeros(t_len, t_len);
    let mut e = vec![0.0; t_len];
    for col in 0..t_len {
        e[col] = 1.0;
        let x = cholesky_solve(&factor, &e);
        e[col] = 0.0;
        for (row, &xv) in x.iter().enumerate() {
            theta.set(row, col, xv);
        }
    }
    // Symmetrise numerical error away.
    for i in 0..t_len {
        for j in (i + 1)..t_len {
            let avg = (theta.get(i, j) + theta.get(j, i)) / 2.0;
            theta.set(i, j, avg);
            theta.set(j, i, avg);
        }
    }
    let mean_diag: f64 =
        (0..t_len).map(|i| theta.get(i, i)).sum::<f64>() / t_len as f64;
    let s_conductance = scale / mean_diag.max(1e-12);

    // Snapshot stage-1 regression weights before rewriting anything.
    let w_hist: Vec<Vec<f64>> = layout
        .target_range()
        .map(|v| {
            let q = -model.h()[v];
            (0..hist).map(|j| model.coupling().get(v, j) / q).collect()
        })
        .collect();

    let target_start = hist;
    for v_idx in 0..t_len {
        let v = target_start + v_idx;
        model.h_mut()[v] = -s_conductance * theta.get(v_idx, v_idx);
        // History row: s·Σ_u Θ[v][u]·W_h[u].
        let mut row = vec![0.0; hist];
        for (u_idx, wh) in w_hist.iter().enumerate().take(t_len) {
            let th = theta.get(v_idx, u_idx);
            if th != 0.0 {
                for (rj, &hj) in row.iter_mut().zip(wh) {
                    *rj += th * hj;
                }
            }
        }
        for (j, &wj) in row.iter().enumerate() {
            model.coupling_mut().set(v, j, wj * s_conductance);
        }
        for u_idx in (v_idx + 1)..t_len {
            let u = target_start + u_idx;
            model
                .coupling_mut()
                .set(v, u, -s_conductance * theta.get(v_idx, u_idx));
        }
    }
    Ok(())
}

/// Picks the ridge `λ` from `candidates` that minimises teacher-forced
/// RMSE on `val` after fitting on `train`, then leaves the model fitted
/// with the winner. Returns the chosen `λ`.
///
/// # Errors
///
/// Returns [`CoreError::EmptyTrainingSet`] if either set (or the
/// candidate list) is empty.
pub fn fit_ridge_validated(
    model: &mut DsGlModel,
    train: &[Sample],
    val: &[Sample],
    candidates: &[f64],
) -> Result<f64, CoreError> {
    fit_ridge_validated_instrumented(model, train, val, candidates, &TelemetrySink::noop())
}

/// [`fit_ridge_validated`] with a [`TelemetrySink`]: every candidate fit
/// records its `train.ridge_*` instruments (see
/// [`fit_ridge_instrumented`]), so the counts reflect the full λ sweep.
///
/// # Errors
///
/// Same as [`fit_ridge_validated`].
pub fn fit_ridge_validated_instrumented(
    model: &mut DsGlModel,
    train: &[Sample],
    val: &[Sample],
    candidates: &[f64],
    sink: &TelemetrySink,
) -> Result<f64, CoreError> {
    if candidates.is_empty() {
        return Err(CoreError::EmptyTrainingSet);
    }
    let mut best: Option<(f64, f64, DsGlModel)> = None;
    for &lambda in candidates {
        let mut m = model.clone();
        fit_ridge_instrumented(&mut m, train, lambda, sink)?;
        let rmse = crate::trainer::Trainer::regression_rmse(&m, val)?;
        if best.as_ref().is_none_or(|(r, _, _)| rmse < *r) {
            best = Some((rmse, lambda, m));
        }
    }
    let (_, lambda, m) = best.expect("non-empty candidates");
    *model = m;
    Ok(lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VariableLayout;
    use crate::trainer::Trainer;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn linear_samples(n_nodes: usize, count: usize, seed: u64) -> Vec<Sample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let hist: Vec<f64> = (0..n_nodes).map(|_| rng.random::<f64>() * 0.8).collect();
                let target: Vec<f64> = hist
                    .iter()
                    .enumerate()
                    .map(|(i, &h)| 0.6 * h + 0.25 * hist[(i + 1) % n_nodes])
                    .collect();
                Sample {
                    history: hist,
                    target,
                }
            })
            .collect()
    }

    #[test]
    fn ridge_recovers_exact_linear_rule() {
        let samples = linear_samples(5, 60, 1);
        let layout = VariableLayout::new(1, 5, 1);
        let mut model = DsGlModel::new(layout);
        fit_ridge(&mut model, &samples, 1e-8).unwrap();
        let rmse = Trainer::regression_rmse(&model, &samples).unwrap();
        assert!(rmse < 1e-6, "ridge should fit exactly: {rmse}");
        // Recovered weights: J[target_i][hist_i] = 0.6·|h| with h = -1.
        let v = layout.index(1, 0, 0);
        let j_self = model.coupling().get(v, layout.index(0, 0, 0));
        assert!((j_self - 0.6).abs() < 1e-6, "J {j_self}");
        let j_next = model.coupling().get(v, layout.index(0, 1, 0));
        assert!((j_next - 0.25).abs() < 1e-6, "J {j_next}");
    }

    #[test]
    fn ridge_beats_sgd_on_the_same_data() {
        let samples = linear_samples(6, 50, 2);
        let layout = VariableLayout::new(1, 6, 1);
        let mut sgd = DsGlModel::new(layout);
        let cfg = crate::TrainConfig {
            epochs: 30,
            lr: 0.05,
            lr_decay: 0.95,
            ..crate::TrainConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        Trainer::new(cfg).fit(&mut sgd, &samples, &mut rng).unwrap();
        let mut ridge = DsGlModel::new(layout);
        fit_ridge(&mut ridge, &samples, 1e-8).unwrap();
        let sgd_rmse = Trainer::regression_rmse(&sgd, &samples).unwrap();
        let ridge_rmse = Trainer::regression_rmse(&ridge, &samples).unwrap();
        assert!(
            ridge_rmse <= sgd_rmse + 1e-12,
            "ridge {ridge_rmse} vs sgd {sgd_rmse}"
        );
    }

    #[test]
    fn masked_refit_improves_pruned_model() {
        let samples = linear_samples(6, 60, 4);
        let layout = VariableLayout::new(1, 6, 1);
        let mut model = DsGlModel::new(layout);
        fit_ridge(&mut model, &samples, 1e-8).unwrap();
        // Prune hard, breaking calibration.
        model.coupling_mut().prune_to_density(0.10);
        let pruned = Trainer::regression_rmse(&model, &samples).unwrap();
        refit_ridge_masked(&mut model, &samples, 1e-8).unwrap();
        let refit = Trainer::regression_rmse(&model, &samples).unwrap();
        assert!(refit <= pruned + 1e-12, "refit {refit} vs pruned {pruned}");
    }

    #[test]
    fn validated_lambda_picked() {
        let samples = linear_samples(5, 60, 5);
        let layout = VariableLayout::new(1, 5, 1);
        let mut model = DsGlModel::new(layout);
        let lambda = fit_ridge_validated(
            &mut model,
            &samples[..40],
            &samples[40..],
            &[1e-6, 1e-2, 10.0],
        )
        .unwrap();
        // Clean linear data: the smallest λ must win.
        assert_eq!(lambda, 1e-6);
        let rmse = Trainer::regression_rmse(&model, &samples[40..]).unwrap();
        assert!(rmse < 1e-4, "rmse {rmse}");
    }

    #[test]
    fn empty_inputs_rejected() {
        let layout = VariableLayout::new(1, 3, 1);
        let mut model = DsGlModel::new(layout);
        assert!(matches!(
            fit_ridge(&mut model, &[], 1e-3),
            Err(CoreError::EmptyTrainingSet)
        ));
        assert!(matches!(
            refit_ridge_masked(&mut model, &[], 1e-3),
            Err(CoreError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn non_finite_samples_yield_error_not_panic() {
        // A NaN in the design matrix poisons the Gram matrix: every
        // escalation of λ still fails to factorise, and the fit must
        // report the failure instead of panicking.
        let mut samples = linear_samples(4, 20, 9);
        samples[3].history[1] = f64::NAN;
        let layout = VariableLayout::new(1, 4, 1);
        let mut model = DsGlModel::new(layout);
        match fit_ridge(&mut model, &samples, 1e-6) {
            Err(CoreError::FactorisationFailed { lambda }) => {
                assert!(lambda > 1e-6, "escalated λ reported: {lambda}")
            }
            other => panic!("expected FactorisationFailed, got {other:?}"),
        }
    }

    #[test]
    fn no_target_target_couplings_after_fit() {
        let samples = linear_samples(4, 30, 6);
        let layout = VariableLayout::new(1, 4, 1);
        let mut model = DsGlModel::new(layout);
        // Seed a target-target coupling that the fit must clear.
        let t0 = layout.index(1, 0, 0);
        let t1 = layout.index(1, 1, 0);
        model.coupling_mut().set(t0, t1, 5.0);
        fit_ridge(&mut model, &samples, 1e-6).unwrap();
        assert_eq!(model.coupling().get(t0, t1), 0.0);
    }
}

#[cfg(test)]
mod residual_tests {
    use super::*;
    use crate::inference::infer_fixed_point;
    use crate::model::VariableLayout;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Samples with a *common shock*: target_i = 0.6·h_i + shock, where
    /// the shock is shared across nodes. Joint inference can subtract
    /// the shock using the other targets; per-node inference cannot.
    fn common_shock_samples(n: usize, count: usize, seed: u64) -> Vec<Sample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let hist: Vec<f64> = (0..n).map(|_| rng.random::<f64>() * 0.8).collect();
                let shock = (rng.random::<f64>() - 0.5) * 0.2;
                let target: Vec<f64> = hist.iter().map(|&h| 0.6 * h + shock).collect();
                Sample {
                    history: hist,
                    target,
                }
            })
            .collect()
    }

    #[test]
    fn gaussian_couplings_keep_h_negative_and_scaled() {
        let samples = common_shock_samples(8, 80, 1);
        let layout = VariableLayout::new(1, 8, 1);
        let mut model = DsGlModel::new(layout);
        fit_ridge(&mut model, &samples, 1.0).unwrap();
        fit_gaussian_couplings(&mut model, &samples, 0.3, 2.0).unwrap();
        let targets: Vec<usize> = layout.target_range().collect();
        let mean_h: f64 =
            targets.iter().map(|&v| -model.h()[v]).sum::<f64>() / targets.len() as f64;
        assert!((mean_h - 2.0).abs() < 1e-9, "mean |h| {mean_h}");
        for &v in &targets {
            assert!(model.h()[v] < 0.0);
        }
        // Symmetry is structural (Coupling), but verify a sample pair.
        let (a, b) = (targets[0], targets[3]);
        assert_eq!(model.coupling().get(a, b), model.coupling().get(b, a));
    }

    #[test]
    fn gaussian_programming_preserves_forecasting_exactly() {
        // With no targets observed the conditional mean equals stage 1.
        let samples = common_shock_samples(8, 90, 5);
        let layout = VariableLayout::new(1, 8, 1);
        let mut stage1 = DsGlModel::new(layout);
        fit_ridge(&mut stage1, &samples, 1.0).unwrap();
        let mut stage2 = stage1.clone();
        fit_gaussian_couplings(&mut stage2, &samples, 0.3, 2.0).unwrap();
        for s in &samples[..5] {
            let p1 = infer_fixed_point(&stage1, s, 400).unwrap();
            let p2 = infer_fixed_point(&stage2, s, 400).unwrap();
            let diff = crate::metrics::rmse(&p1, &p2);
            assert!(diff < 1e-6, "forecasting fixed points diverged: {diff}");
        }
    }

    #[test]
    fn joint_imputation_cancels_common_shocks() {
        // Half the target frame is observed: the observed residuals
        // reveal the common shock, and the residual couplings transmit
        // it to the unobserved nodes - per-node inference cannot.
        let n = 10;
        let train = common_shock_samples(n, 120, 2);
        let test = common_shock_samples(n, 30, 3);
        let layout = VariableLayout::new(1, n, 1);
        let mut stage1 = DsGlModel::new(layout);
        fit_ridge(&mut stage1, &train, 1.0).unwrap();
        let mut stage2 = stage1.clone();
        fit_gaussian_couplings(&mut stage2, &train, 0.3, 2.0).unwrap();

        let observed: Vec<usize> = (0..n / 2).collect();
        let hidden: Vec<usize> = (n / 2..n).collect();
        let rmse = |model: &DsGlModel| {
            let mut sse = 0.0;
            let mut count = 0;
            for s in &test {
                let pred = crate::inference::infer_fixed_point_imputation(
                    model, s, &observed, 200,
                )
                .unwrap();
                for &i in &hidden {
                    sse += (pred[i] - s.target[i]) * (pred[i] - s.target[i]);
                    count += 1;
                }
            }
            (sse / count as f64).sqrt()
        };
        let r1 = rmse(&stage1);
        let r2 = rmse(&stage2);
        assert!(
            r2 < r1 * 0.9,
            "imputation should exploit observed outputs: stage1 {r1}, stage2 {r2}"
        );
    }

    #[test]
    fn gaussian_stage_validates_inputs() {
        let layout = VariableLayout::new(1, 4, 1);
        let mut model = DsGlModel::new(layout);
        assert!(matches!(
            fit_gaussian_couplings(&mut model, &[], 0.3, 2.0),
            Err(CoreError::EmptyTrainingSet)
        ));
        let samples = common_shock_samples(4, 10, 4);
        assert!(matches!(
            fit_gaussian_couplings(&mut model, &samples, 1.5, 2.0),
            Err(CoreError::InvalidConfig { .. })
        ));
        assert!(matches!(
            fit_gaussian_couplings(&mut model, &samples, 0.3, 0.0),
            Err(CoreError::InvalidConfig { .. })
        ));
    }
}

#[cfg(test)]
mod horizon_tests {
    use super::*;
    use crate::inference::infer_fixed_point;
    use crate::model::VariableLayout;
    use crate::trainer::Trainer;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Two-step dynamics: x_{t+1} = 0.8·x_t, x_{t+2} = 0.64·x_t.
    fn two_step_samples(n: usize, count: usize, seed: u64) -> Vec<Sample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let hist: Vec<f64> = (0..n).map(|_| rng.random::<f64>() * 0.9).collect();
                let step1: Vec<f64> = hist.iter().map(|&h| 0.8 * h).collect();
                let step2: Vec<f64> = hist.iter().map(|&h| 0.64 * h).collect();
                let mut target = step1;
                target.extend(step2);
                Sample {
                    history: hist,
                    target,
                }
            })
            .collect()
    }

    #[test]
    fn multi_horizon_layout_shapes() {
        let l = VariableLayout::with_horizon(3, 4, 2, 2);
        assert_eq!(l.horizon(), 2);
        assert_eq!(l.total(), (3 + 2) * 8);
        assert_eq!(l.target_len(), 16);
        assert_eq!(l.target_range(), 24..40);
        assert_eq!(l.index(4, 3, 1), 39);
    }

    #[test]
    fn ridge_fits_two_step_horizon() {
        let n = 5;
        let samples = two_step_samples(n, 50, 1);
        let layout = VariableLayout::with_horizon(1, n, 1, 2);
        let mut model = DsGlModel::new(layout);
        fit_ridge(&mut model, &samples, 1e-8).unwrap();
        let rmse = Trainer::regression_rmse(&model, &samples).unwrap();
        assert!(rmse < 1e-6, "two-step fit rmse {rmse}");
        // Both horizon frames recovered through joint annealing.
        let pred = infer_fixed_point(&model, &samples[0], 100).unwrap();
        for i in 0..n {
            assert!((pred[i] - samples[0].target[i]).abs() < 1e-6);
            assert!((pred[n + i] - samples[0].target[n + i]).abs() < 1e-6);
        }
        // The step-2 self weight is 0.64 (direct from history).
        let v2 = layout.index(2, 0, 0);
        assert!((model.coupling().get(v2, 0) - 0.64).abs() < 1e-6);
    }

    #[test]
    fn persistence_prior_covers_all_horizon_frames() {
        let layout = VariableLayout::with_horizon(2, 3, 1, 3);
        let mut model = DsGlModel::new(layout);
        model.init_persistence(0.9);
        let last = layout.index(1, 0, 0);
        for h in 0..3 {
            let t = layout.index(2 + h, 0, 0);
            assert_eq!(model.coupling().get(t, last), 0.9, "frame {h}");
        }
    }
}
