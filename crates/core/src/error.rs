//! Error type for the DS-GL core.

use dsgl_graph::GraphError;
use dsgl_ising::IsingError;
use std::error::Error;
use std::fmt;

/// Errors produced by training, decomposition, and inference.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A sample's length did not match the model's variable layout.
    SampleShapeMismatch {
        /// What was being supplied.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// No training samples were supplied.
    EmptyTrainingSet,
    /// An invalid configuration value.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// The Gram matrix could not be Cholesky-factorised even after
    /// escalating the ridge regularisation (degenerate or non-finite
    /// training data).
    FactorisationFailed {
        /// The regularisation strength at the final, failed attempt.
        lambda: f64,
    },
    /// An error bubbled up from the dynamical-system substrate.
    Ising(IsingError),
    /// An error bubbled up from the graph substrate.
    Graph(GraphError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::SampleShapeMismatch {
                what,
                expected,
                actual,
            } => write!(f, "{what} has length {actual}, expected {expected}"),
            CoreError::EmptyTrainingSet => write!(f, "training set is empty"),
            CoreError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            CoreError::FactorisationFailed { lambda } => write!(
                f,
                "gram factorisation failed even with regularisation inflated to {lambda:e}"
            ),
            CoreError::Ising(e) => write!(f, "dynamical system error: {e}"),
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Ising(e) => Some(e),
            CoreError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsingError> for CoreError {
    fn from(e: IsingError) -> Self {
        CoreError::Ising(e)
    }
}

impl From<GraphError> for CoreError {
    fn from(e: GraphError) -> Self {
        CoreError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::from(IsingError::NonFinite { what: "h" });
        assert!(e.to_string().contains("dynamical system error"));
        assert!(e.source().is_some());
        assert!(CoreError::EmptyTrainingSet.source().is_none());
    }

    #[test]
    fn from_graph_error() {
        let e = CoreError::from(GraphError::SelfLoop { node: 3 });
        assert!(matches!(e, CoreError::Graph(_)));
    }
}
