//! Workspace telemetry, re-exported at the core layer.
//!
//! The registry primitives live in [`dsgl_ising::telemetry`] — the
//! lowest crate whose hot paths are instrumented — and this module
//! re-exports them so every consumer of `dsgl-core` reaches the whole
//! telemetry surface through one path. See the source module for the
//! design notes (zero-cost noop sink, run-granularity recording,
//! bit-identity guarantees).
//!
//! # Instrument catalogue
//!
//! | family | instrument | kind | recorded by |
//! |---|---|---|---|
//! | `anneal` | `anneal.runs`, `anneal.converged` | counter | every [`RealValuedDspu`](dsgl_ising::RealValuedDspu) run |
//! | `anneal` | `anneal.steps`, `anneal.sim_time_ns`, `anneal.final_rate`, `anneal.sparse_steps`, `anneal.active_fraction`, `anneal.rail_saturated_nodes` | histogram | every run |
//! | `anneal` | `anneal.drain_validations` | counter | the event-driven engine |
//! | `anneal` | `anneal.active_set_peak` | histogram | the event-driven engine |
//! | `guard` | `guard.runs`, `guard.attempts`, `guard.retries`, `guard.retries.halve_dt`, `guard.retries.strict_fallback`, `guard.retries.rerandomize`, `guard.degraded_runs`, `guard.sanitized_nodes`, `guard.fault_clamped` | counter | [`GuardedAnneal`](crate::GuardedAnneal) and the mapped facade |
//! | `train` | `train.ridge_fits`, `train.ridge_solves`, `train.ridge_escalations`, `train.sgd_fits`, `train.epochs` | counter | [`ridge`](crate::ridge) / [`Trainer`](crate::Trainer) |
//! | `train` | `train.epoch_loss` | histogram | [`Trainer`](crate::Trainer) |
//! | `train` | `train.final_loss` | gauge | [`Trainer`](crate::Trainer) |
//! | `train` | `train.phase.fit_ns`, `train.phase.ridge_ns` | histogram (wall ns) | phase spans |
//! | `hw` | `hw.mappings`, `hw.coanneal_runs`, `hw.slice_switches`, `hw.sync_refreshes` | counter | `MappedMachine` |
//! | `hw` | `hw.pes`, `hw.lanes`, `hw.links`, `hw.temporal_links`, `hw.max_slices`, `hw.wormholes` | gauge | `MappedMachine` |
//! | `hw` | `hw.pe_occupancy`, `hw.cu_lane_demand` | histogram | `MappedMachine` |
//!
//! Durations are simulated nanoseconds wherever the dynamics define
//! simulated time; only the coarse `*.phase.*_ns` spans read the wall
//! clock.

pub use dsgl_ising::telemetry::{
    bucket_bounds, HistogramBucket, InstrumentSnapshot, MetricsRegistry, MetricsSnapshot,
    PhaseSpan, TelemetrySink, SCHEMA_VERSION,
};
