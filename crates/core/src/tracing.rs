//! Per-request tracing, re-exported at the core layer.
//!
//! The span and flight-recorder primitives live in
//! [`dsgl_ising::tracing`] — the lowest crate whose runs are traced —
//! and this module re-exports them so every consumer of `dsgl-core`
//! reaches the whole tracing surface through one path. See the source
//! module for the design notes (zero-cost noop collector, record-only-
//! after-dynamics contract, bounded ring semantics, exporter formats).
//!
//! # Span catalogue
//!
//! | span | parent | recorded by |
//! |---|---|---|
//! | `serve.request` | — (root) | `dsgl-serve` at reply time |
//! | `serve.admission` | `serve.request` | `dsgl-serve` on admit |
//! | `serve.queue_wait` | `serve.request` | `dsgl-serve` on `pop_batch` |
//! | `serve.batch` | primary `serve.request` | `dsgl-serve` per batch |
//! | `serve.coalesce` | rider `serve.request` | `dsgl-serve` per duplicate |
//! | `serve.fallback` | `serve.request` | `dsgl-serve` on SLO/watchdog fallback |
//! | `anneal.strict` / `anneal.adaptive` | `serve.batch` (or caller scope) | [`RealValuedDspu`](dsgl_ising::RealValuedDspu) per run |
//! | `anneal.lockstep` | `serve.batch` (or caller scope) | [`run_lockstep`](dsgl_ising::run_lockstep) per window |
//! | `guard.retry` | `serve.batch` (or caller scope) | [`GuardedAnneal`](crate::GuardedAnneal) per rejected attempt |
//! | `hw.coanneal` | caller scope | `MappedMachine` per co-anneal run |

pub use dsgl_ising::tracing::{
    chrome_trace_json, prometheus_text, FlightDump, FlightEvent, FlightRecorder, SpanArg,
    SpanCollector, SpanRecord, TraceScope, TRACE_SCHEMA_VERSION,
};
