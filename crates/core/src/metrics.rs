//! Accuracy metrics (the paper evaluates in RMSE).

/// Root mean squared error between predictions and ground truth.
///
/// # Panics
///
/// Panics on length mismatch or empty inputs.
pub fn rmse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "rmse length mismatch");
    assert!(!pred.is_empty(), "rmse of empty slices");
    let ss: f64 = pred
        .iter()
        .zip(truth)
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum();
    (ss / pred.len() as f64).sqrt()
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics on length mismatch or empty inputs.
pub fn mae(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "mae length mismatch");
    assert!(!pred.is_empty(), "mae of empty slices");
    pred.iter()
        .zip(truth)
        .map(|(&p, &t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Pools per-sample squared errors into one RMSE: each entry is
/// `(rmse_of_sample, element_count)`.
///
/// # Panics
///
/// Panics if the total element count is zero.
pub fn pooled_rmse(per_sample: &[(f64, usize)]) -> f64 {
    let total: usize = per_sample.iter().map(|&(_, n)| n).sum();
    assert!(total > 0, "pooled rmse over zero elements");
    let ss: f64 = per_sample
        .iter()
        .map(|&(r, n)| r * r * n as f64)
        .sum();
    (ss / total as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_known() {
        assert!((rmse(&[3.0, 0.0], &[0.0, 4.0]) - 12.5f64.sqrt()).abs() < 1e-12);
        assert_eq!(rmse(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn mae_known() {
        assert!((mae(&[1.0, -1.0], &[0.0, 1.0]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn pooling_matches_flat() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.5, 1.0, 3.5];
        let flat = rmse(&a, &b);
        let pooled = pooled_rmse(&[
            (rmse(&a[..2], &b[..2]), 2),
            (rmse(&a[2..], &b[2..]), 1),
        ]);
        assert!((flat - pooled).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatch_panics() {
        rmse(&[1.0], &[1.0, 2.0]);
    }
}
