//! GL inference as natural annealing (paper Sec. III.C).

use crate::error::CoreError;
use crate::metrics::pooled_rmse;
use crate::model::DsGlModel;
use crate::telemetry::TelemetrySink;
use crate::windows::observed_state;
use dsgl_data::Sample;
use dsgl_ising::{AnnealConfig, AnnealReport, EngineMode, RealValuedDspu};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};

/// Builds a [`RealValuedDspu`] programmed with the model's parameters,
/// history variables clamped to the sample's observations and target
/// variables randomised.
///
/// # Errors
///
/// Returns shape mismatches and invalid-parameter errors.
pub fn machine_for_sample<R: Rng + ?Sized>(
    model: &DsGlModel,
    sample: &Sample,
    rng: &mut R,
) -> Result<RealValuedDspu, CoreError> {
    let layout = model.layout();
    let state = observed_state(&layout, sample)?;
    let mut dspu = RealValuedDspu::new(model.coupling().clone(), model.h().to_vec())?;
    for (v, &obs) in state.iter().enumerate().take(layout.history_len()) {
        dspu.clamp(v, obs.clamp(-dspu.rail(), dspu.rail()))?;
    }
    dspu.randomize_free(rng);
    Ok(dspu)
}

/// Runs one annealed inference on the full (dense or decomposed) model:
/// clamp history, anneal, read the target block.
///
/// Returns the predicted target frame and the annealing report (whose
/// `sim_time_ns` is the inference latency).
///
/// # Errors
///
/// Returns shape mismatches and invalid-parameter errors.
pub fn infer_dense<R: Rng + ?Sized>(
    model: &DsGlModel,
    sample: &Sample,
    config: &AnnealConfig,
    rng: &mut R,
) -> Result<(Vec<f64>, AnnealReport), CoreError> {
    infer_dense_instrumented(model, sample, config, &TelemetrySink::noop(), rng)
}

/// [`infer_dense`] with a [`TelemetrySink`] attached to the per-window
/// machine, so the run records the `anneal.*` instrument family. The
/// sink never touches the RNG or the dynamics: results are bit-identical
/// to the plain call whether the sink is enabled or not.
///
/// # Errors
///
/// Returns shape mismatches and invalid-parameter errors.
pub fn infer_dense_instrumented<R: Rng + ?Sized>(
    model: &DsGlModel,
    sample: &Sample,
    config: &AnnealConfig,
    sink: &TelemetrySink,
    rng: &mut R,
) -> Result<(Vec<f64>, AnnealReport), CoreError> {
    let mut dspu = machine_for_sample(model, sample, rng)?;
    dspu.set_telemetry(sink.clone());
    let report = dspu.run(config, rng);
    let layout = model.layout();
    Ok((dspu.state()[layout.target_range()].to_vec(), report))
}

/// Fixed-point inference without simulating the analog dynamics: damped
/// iteration of the regression formula over the target block. Fast
/// surrogate used by parameter sweeps; agrees with annealed inference
/// when the contraction projection held during training.
///
/// # Errors
///
/// Returns shape mismatches.
pub fn infer_fixed_point(
    model: &DsGlModel,
    sample: &Sample,
    iterations: usize,
) -> Result<Vec<f64>, CoreError> {
    let layout = model.layout();
    let mut state = observed_state(&layout, sample)?;
    let target: Vec<usize> = layout.target_range().collect();
    for _ in 0..iterations {
        for &v in &target {
            let row = model.coupling().row(v);
            let mut dot = 0.0;
            for (j, &s) in state.iter().enumerate() {
                dot += row[j] * s;
            }
            state[v] = dot / (-model.h()[v]);
        }
    }
    Ok(state[layout.target_range()].to_vec())
}

/// Runs one annealed *imputation* inference: besides the history block,
/// the listed target-frame entries (indices into the target frame) are
/// also clamped to their ground-truth values, and only the remaining
/// unknown targets anneal. This is the paper's core definition of graph
/// learning — "acquisition of unknown graph node features using observed
/// node features" — and the regime where coupling the outputs lets
/// observed nodes inform unobserved ones through the machine's joint
/// relaxation.
///
/// Returns the full predicted target frame (observed entries echo their
/// clamped values) and the annealing report.
///
/// # Errors
///
/// Returns shape mismatches, invalid parameters, and out-of-range
/// observed indices.
pub fn infer_dense_imputation<R: Rng + ?Sized>(
    model: &DsGlModel,
    sample: &Sample,
    observed_targets: &[usize],
    config: &AnnealConfig,
    rng: &mut R,
) -> Result<(Vec<f64>, AnnealReport), CoreError> {
    let layout = model.layout();
    let mut dspu = machine_for_sample(model, sample, rng)?;
    for &t_idx in observed_targets {
        if t_idx >= layout.target_len() {
            return Err(CoreError::SampleShapeMismatch {
                what: "observed target index",
                expected: layout.target_len(),
                actual: t_idx,
            });
        }
        let v = layout.history_len() + t_idx;
        let value = sample.target[t_idx].clamp(-dspu.rail(), dspu.rail());
        dspu.clamp(v, value)?;
    }
    let report = dspu.run(config, rng);
    Ok((dspu.state()[layout.target_range()].to_vec(), report))
}

/// Fixed-point imputation (see [`infer_dense_imputation`]): damped
/// iteration with the observed target entries held at their true values.
///
/// # Errors
///
/// Returns shape mismatches and out-of-range observed indices.
pub fn infer_fixed_point_imputation(
    model: &DsGlModel,
    sample: &Sample,
    observed_targets: &[usize],
    iterations: usize,
) -> Result<Vec<f64>, CoreError> {
    let layout = model.layout();
    let mut state = observed_state(&layout, sample)?;
    let mut held = vec![false; layout.target_len()];
    for &t_idx in observed_targets {
        if t_idx >= layout.target_len() {
            return Err(CoreError::SampleShapeMismatch {
                what: "observed target index",
                expected: layout.target_len(),
                actual: t_idx,
            });
        }
        state[layout.history_len() + t_idx] = sample.target[t_idx];
        held[t_idx] = true;
    }
    let target: Vec<usize> = layout.target_range().collect();
    for _ in 0..iterations {
        for (t_idx, &v) in target.iter().enumerate() {
            if held[t_idx] {
                continue;
            }
            let row = model.coupling().row(v);
            let mut dot = 0.0;
            for (j, &s) in state.iter().enumerate() {
                dot += row[j] * s;
            }
            state[v] = dot / (-model.h()[v]);
        }
    }
    Ok(state[layout.target_range()].to_vec())
}

/// Derives the RNG seed for window `index` of a batch from the batch's
/// master seed (splitmix64 finaliser). Pure in `(master, index)`, so the
/// assignment of windows to threads can never change a window's noise.
pub(crate) fn window_seed(master: u64, index: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Lockstep kill switch, flipped by [`set_lockstep_enabled`]. Stored
/// inverted so the zero-initialised static means "enabled" (the
/// default). `Relaxed` suffices: both paths are bit-identical, so a
/// racing toggle can only choose between two equally-correct codepaths.
static LOCKSTEP_DISABLED: AtomicBool = AtomicBool::new(false);

/// Globally enables or disables lockstep batched annealing (default:
/// enabled). Lockstep fuses the per-window `J·σ` mat-vecs of a batch
/// into one GEMM per integrator stage (see `dsgl_ising::lockstep`);
/// because it is bit-identical to the serial path, this switch changes
/// performance only — it exists for A/B benchmarking and as an
/// operational escape hatch.
pub fn set_lockstep_enabled(on: bool) {
    LOCKSTEP_DISABLED.store(!on, Ordering::Relaxed);
}

/// Whether lockstep batched annealing is currently enabled (see
/// [`set_lockstep_enabled`]).
pub fn lockstep_enabled() -> bool {
    !LOCKSTEP_DISABLED.load(Ordering::Relaxed)
}

/// Windows fused per lockstep GEMM batch in [`infer_batch`]: wide
/// enough that a loaded row of `J` amortises across many columns, small
/// enough that groups still spread across the thread pool.
const LOCKSTEP_GROUP: usize = 32;

/// Cheap eligibility probe shared by the batch entry points, run before
/// building any machine: lockstep handles strict noiseless configs on
/// reasonably dense models (the same ≥ 12.5 % stored-entry gate as
/// `dsgl_ising::lockstep`, measured on the dense model coupling the
/// per-window CSR is built from). `run_lockstep` remains the final
/// authority — a `true` here only makes the attempt worth its probe.
pub(crate) fn lockstep_precheck(model: &DsGlModel, config: &AnnealConfig) -> bool {
    if !lockstep_enabled() || !matches!(config.mode, EngineMode::Strict) || !config.noise.is_none()
    {
        return false;
    }
    let n = model.layout().total();
    if n == 0 {
        return false;
    }
    let mut stored = 0usize;
    for v in 0..n {
        stored += model.coupling().row(v).iter().filter(|&&x| x != 0.0).count();
    }
    stored * 8 >= n * n
}

/// One lockstep group of [`infer_batch_instrumented`]: windows
/// `base..base + samples.len()` of the batch. Machines are built with
/// exactly the per-window RNG draws of the serial path; if the group
/// turns out ineligible the probe machines are discarded (they recorded
/// no telemetry) and the group replays serially under fresh copies of
/// the same per-window RNGs — bit-identical by construction, because a
/// strict noiseless run consumes no RNG at all.
fn lockstep_group(
    model: &DsGlModel,
    samples: &[Sample],
    config: &AnnealConfig,
    master_seed: u64,
    base: u64,
    sink: &TelemetrySink,
) -> Result<Vec<(Vec<f64>, AnnealReport)>, CoreError> {
    use rand::SeedableRng;
    let layout = model.layout();
    let mut machines = Vec::with_capacity(samples.len());
    for (k, sample) in samples.iter().enumerate() {
        let mut rng =
            rand::rngs::StdRng::seed_from_u64(window_seed(master_seed, base + k as u64));
        let mut dspu = machine_for_sample(model, sample, &mut rng)?;
        dspu.set_telemetry(sink.clone());
        machines.push(dspu);
    }
    let mut ws = dsgl_ising::Workspace::new();
    if let Some(reports) = dsgl_ising::run_lockstep(&mut machines, config, &mut ws) {
        if sink.is_enabled() {
            sink.counter_add("anneal.lockstep_batches", 1);
            sink.counter_add("anneal.lockstep_windows", machines.len() as u64);
        }
        let mut out = Vec::with_capacity(machines.len());
        for (mut dspu, report) in machines.into_iter().zip(reports) {
            dspu.record_anneal(&report);
            out.push((dspu.state()[layout.target_range()].to_vec(), report));
        }
        return Ok(out);
    }
    drop(machines);
    let mut out = Vec::with_capacity(samples.len());
    for (k, sample) in samples.iter().enumerate() {
        let mut rng =
            rand::rngs::StdRng::seed_from_u64(window_seed(master_seed, base + k as u64));
        out.push(infer_dense_instrumented(model, sample, config, sink, &mut rng)?);
    }
    Ok(out)
}

/// Anneals many test windows concurrently, one machine per window.
///
/// Each window gets its own [`rand::rngs::StdRng`] seeded from
/// `(master_seed, window index)` via a splitmix64 mix, so the draws that
/// randomise the free block and inject annealing noise are a pure
/// function of the window's position in `samples` — never of which
/// thread ran it or how many threads exist. The returned predictions and
/// reports are therefore **bit-identical** across every
/// [`crate::Threading`] policy, across repeated calls, and between the
/// `parallel` and `--no-default-features` builds. (For the same reason
/// the results intentionally differ from threading a single shared RNG
/// through sequential [`infer_dense`] calls.)
///
/// Windows are annealed in parallel when the `parallel` feature is
/// enabled; wrap the call in [`crate::Threading::install`] to pin the
/// thread count.
///
/// Returns one `(predicted target frame, anneal report)` per sample, in
/// sample order.
///
/// # Example
///
/// ```
/// use dsgl_core::{inference, DsGlModel, VariableLayout, Threading};
/// use dsgl_data::Sample;
/// use dsgl_ising::AnnealConfig;
///
/// let layout = VariableLayout::new(1, 3, 1);
/// let mut model = DsGlModel::new(layout);
/// model.init_persistence(0.9);
/// let windows: Vec<Sample> = (0..4)
///     .map(|i| Sample {
///         history: vec![0.1 * i as f64; 3],
///         target: vec![0.0; 3],
///     })
///     .collect();
/// let cfg = AnnealConfig::default();
/// let par = inference::infer_batch(&model, &windows, &cfg, 7).unwrap();
/// let ser = Threading::Sequential
///     .install(|| inference::infer_batch(&model, &windows, &cfg, 7))
///     .unwrap();
/// assert_eq!(par.len(), 4);
/// for (p, s) in par.iter().zip(&ser) {
///     assert_eq!(p.0, s.0); // bit-identical predictions
/// }
/// ```
///
/// # Errors
///
/// Returns [`CoreError::EmptyTrainingSet`] for an empty batch, or the
/// first per-window shape/parameter error in sample order.
pub fn infer_batch(
    model: &DsGlModel,
    samples: &[Sample],
    config: &AnnealConfig,
    master_seed: u64,
) -> Result<Vec<(Vec<f64>, AnnealReport)>, CoreError> {
    infer_batch_instrumented(model, samples, config, master_seed, &TelemetrySink::noop())
}

/// [`infer_batch`] with a [`TelemetrySink`] shared across every
/// per-window machine. The registry behind the sink is thread-safe and
/// recording happens once per window (never inside the integration
/// loop), so parallel windows aggregate into the same instruments with
/// negligible contention and unchanged results.
///
/// # Errors
///
/// Returns [`CoreError::EmptyTrainingSet`] for an empty batch, or the
/// first per-window shape/parameter error in sample order.
pub fn infer_batch_instrumented(
    model: &DsGlModel,
    samples: &[Sample],
    config: &AnnealConfig,
    master_seed: u64,
    sink: &TelemetrySink,
) -> Result<Vec<(Vec<f64>, AnnealReport)>, CoreError> {
    if samples.is_empty() {
        return Err(CoreError::EmptyTrainingSet);
    }
    let layout = model.layout();
    let total = layout.total();
    // Rough per-window flop count: one matvec per integration step.
    let work_per_window = total * total * 64;
    if samples.len() >= 2 && lockstep_precheck(model, config) {
        // Lockstep fast path: fuse each group's per-window mat-vecs
        // into one GEMM per integrator stage. Groups are independent
        // and every window stays a pure function of
        // `(model, sample, config, window_seed)`, so the grouping can
        // never change a single output bit.
        let n_groups = samples.len().div_ceil(LOCKSTEP_GROUP);
        let groups =
            crate::threading::par_map(n_groups, LOCKSTEP_GROUP * work_per_window, |g| {
                let lo = g * LOCKSTEP_GROUP;
                let hi = (lo + LOCKSTEP_GROUP).min(samples.len());
                lockstep_group(model, &samples[lo..hi], config, master_seed, lo as u64, sink)
            });
        let mut out = Vec::with_capacity(samples.len());
        for group in groups {
            out.extend(group?);
        }
        return Ok(out);
    }
    let results = crate::threading::par_map(samples.len(), work_per_window, |i| {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(window_seed(master_seed, i as u64));
        infer_dense_instrumented(model, &samples[i], config, sink, &mut rng)
    });
    results.into_iter().collect()
}

/// How a batch of windows seeds the free block of each machine.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum WarmStart {
    /// Every window anneals from a seeded random initialisation.
    /// Windows are fully independent (and maximally parallel); this is
    /// the bit-exact historical behaviour.
    #[default]
    Cold,
    /// Windows are grouped into fixed-size chunks; within a chunk each
    /// window's free block starts from the *previous* window's
    /// equilibrium. Consecutive temporal windows are highly
    /// autocorrelated, so the machine starts near its fixed point and
    /// the integrator takes far fewer steps — especially with the
    /// event-driven [`dsgl_ising::EngineMode::Adaptive`] engine, whose
    /// active set is nearly empty from the first step. Chunks are
    /// processed in parallel and chained sequentially inside, so the
    /// results depend only on `(samples, config, master_seed, chunk)`,
    /// never on the thread count.
    Chained {
        /// Windows per chain (the first of each chunk starts cold).
        /// `0` is treated as one chunk spanning the whole batch.
        chunk: usize,
    },
    /// Every window anneals from a multigrid warm start: a
    /// Louvain-coarsened replica of the machine (one node per community
    /// of the free subgraph) is annealed cheaply and its equilibrium
    /// prolonged onto the fine free block before the fine anneal (see
    /// [`dsgl_ising::multigrid`]). Windows stay fully independent —
    /// unlike [`WarmStart::Chained`] there is no cross-window coupling,
    /// so this policy composes with request coalescing and batch
    /// regrouping without changing a bit. The warm start is a pure
    /// function of the machine; when coarsening is not applicable
    /// (small or structureless free subgraph) a window silently falls
    /// back to the cold start.
    Multigrid {
        /// Maximum coarse levels to build (`0` is treated as `1`).
        levels: usize,
        /// Coarse-solve convergence tolerance, rail fractions per ns
        /// (typically much looser than the fine tolerance).
        coarse_tol: f64,
    },
}

/// [`infer_batch`] with a [`WarmStart`] policy.
///
/// `WarmStart::Cold` is exactly [`infer_batch`]. `WarmStart::Chained`
/// seeds each window (after the first of its chunk) from the previous
/// window's equilibrium; the per-window RNG is still consumed
/// identically to the cold path, so switching policies never perturbs
/// the noise draws, and results remain bit-identical across thread
/// counts and repeated calls for a fixed policy.
///
/// # Errors
///
/// Returns [`CoreError::EmptyTrainingSet`] for an empty batch, or the
/// first per-window shape/parameter error in sample order.
pub fn infer_batch_warm(
    model: &DsGlModel,
    samples: &[Sample],
    config: &AnnealConfig,
    master_seed: u64,
    warm: WarmStart,
) -> Result<Vec<(Vec<f64>, AnnealReport)>, CoreError> {
    infer_batch_warm_instrumented(
        model,
        samples,
        config,
        master_seed,
        warm,
        &TelemetrySink::noop(),
    )
}

/// [`infer_batch_warm`] with a [`TelemetrySink`] shared across every
/// per-window machine (see [`infer_batch_instrumented`]).
///
/// # Errors
///
/// Returns [`CoreError::EmptyTrainingSet`] for an empty batch, or the
/// first per-window shape/parameter error in sample order.
pub fn infer_batch_warm_instrumented(
    model: &DsGlModel,
    samples: &[Sample],
    config: &AnnealConfig,
    master_seed: u64,
    warm: WarmStart,
    sink: &TelemetrySink,
) -> Result<Vec<(Vec<f64>, AnnealReport)>, CoreError> {
    let chunk = match warm {
        WarmStart::Cold => {
            return infer_batch_instrumented(model, samples, config, master_seed, sink)
        }
        WarmStart::Multigrid { levels, coarse_tol } => {
            return infer_batch_multigrid_instrumented(
                model,
                samples,
                config,
                master_seed,
                &dsgl_ising::MultigridOptions { levels, coarse_tol },
                sink,
            )
        }
        WarmStart::Chained { chunk } => {
            if chunk == 0 {
                samples.len()
            } else {
                chunk
            }
        }
    };
    if samples.is_empty() {
        return Err(CoreError::EmptyTrainingSet);
    }
    let layout = model.layout();
    let total = layout.total();
    let n_chunks = samples.len().div_ceil(chunk);
    let work_per_chunk = chunk * total * total * 64;
    let chunks = crate::threading::par_map(n_chunks, work_per_chunk, |c| {
        use rand::SeedableRng;
        let lo = c * chunk;
        let hi = (lo + chunk).min(samples.len());
        let mut out: Vec<Result<(Vec<f64>, AnnealReport), CoreError>> =
            Vec::with_capacity(hi - lo);
        // The previous window's full equilibrium state; the target block
        // seeds the next window's free block.
        let mut prev: Option<Vec<f64>> = None;
        // The previous machine's scratch workspace migrates down the
        // chain, so only the first window of a chunk pays the warm-up
        // allocations (buffers carry capacity, never values — results
        // are unchanged).
        let mut pool: Option<dsgl_ising::Workspace> = None;
        for (i, sample) in samples.iter().enumerate().take(hi).skip(lo) {
            let mut rng =
                rand::rngs::StdRng::seed_from_u64(window_seed(master_seed, i as u64));
            // machine_for_sample consumes the same RNG draws as the cold
            // path (free-block randomisation), so noise streams match.
            let result = machine_for_sample(model, sample, &mut rng).and_then(|mut dspu| {
                dspu.set_telemetry(sink.clone());
                if let Some(ws) = pool.take() {
                    dspu.adopt_workspace(ws);
                }
                if let Some(prev_state) = &prev {
                    let mut state = dspu.state().to_vec();
                    for (v, &p) in layout.target_range().zip(prev_state.iter()) {
                        state[v] = p;
                    }
                    dspu.set_state(&state)?;
                }
                let report = dspu.run(config, &mut rng);
                let pred = dspu.state()[layout.target_range()].to_vec();
                prev = Some(pred.clone());
                pool = Some(dspu.take_workspace());
                Ok((pred, report))
            });
            if result.is_err() {
                prev = None;
            }
            out.push(result);
        }
        out
    });
    chunks.into_iter().flatten().collect()
}

/// The [`WarmStart::Multigrid`] batch path: windows stay independent
/// (parallel per-window, like the cold path), each machine receives a
/// multigrid warm start between construction and its fine anneal, with
/// the Louvain hierarchy built once per batch and shared. The
/// per-window RNG is consumed identically to the cold path — the warm
/// start draws nothing — so the only difference from cold is the free
/// block's starting point. Records [`dsgl_ising::multigrid::instruments::FINE_STEPS_SAVED`]
/// (budget steps minus actual fine steps) for each window whose warm
/// start applied.
fn infer_batch_multigrid_instrumented(
    model: &DsGlModel,
    samples: &[Sample],
    config: &AnnealConfig,
    master_seed: u64,
    opts: &dsgl_ising::MultigridOptions,
    sink: &TelemetrySink,
) -> Result<Vec<(Vec<f64>, AnnealReport)>, CoreError> {
    if samples.is_empty() {
        return Err(CoreError::EmptyTrainingSet);
    }
    let layout = model.layout();
    let total = layout.total();
    // The Louvain hierarchy depends only on the coupling topology and
    // the clamp mask — identical across every window of a batch — so it
    // is built once from a probe machine and shared read-only by all
    // windows. The probe RNG is a throwaway: per-window machines are
    // re-seeded from `window_seed`, so per-window bits are unaffected.
    let hierarchy = {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(window_seed(master_seed, 0));
        machine_for_sample(model, &samples[0], &mut rng)
            .ok()
            .and_then(|probe| dsgl_ising::multigrid::build_hierarchy(&probe, opts))
    };
    let work_per_window = total * total * 64;
    let results = crate::threading::par_map(samples.len(), work_per_window, |i| {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(window_seed(master_seed, i as u64));
        machine_for_sample(model, &samples[i], &mut rng).map(|mut dspu| {
            dspu.set_telemetry(sink.clone());
            let warmed = hierarchy
                .as_ref()
                .and_then(|h| dsgl_ising::multigrid::warm_start_with(&mut dspu, h, opts, config))
                .is_some();
            let report = dspu.run(config, &mut rng);
            if warmed {
                record_fine_steps_saved(sink, config, &report);
            }
            (dspu.state()[layout.target_range()].to_vec(), report)
        })
    });
    results.into_iter().collect()
}

/// Reports how many fine-level integration steps a warm start saved
/// against the annealing budget (`max_time_ns / dt_ns`).
pub(crate) fn record_fine_steps_saved(sink: &TelemetrySink, config: &AnnealConfig, report: &AnnealReport) {
    if !sink.is_enabled() || config.dt_ns <= 0.0 {
        return;
    }
    let budget_steps = (config.max_time_ns / config.dt_ns) as usize;
    sink.counter_add(
        dsgl_ising::multigrid::instruments::FINE_STEPS_SAVED,
        budget_steps.saturating_sub(report.steps) as u64,
    );
}

/// Evaluates annealed inference over a test set using [`infer_batch`]:
/// the parallel, deterministically-seeded counterpart of [`evaluate`].
/// The report is reduced in sample order, so it inherits `infer_batch`'s
/// bit-identical-across-thread-counts guarantee.
///
/// # Errors
///
/// Returns [`CoreError::EmptyTrainingSet`] for an empty test set, or any
/// per-sample inference error.
pub fn evaluate_batch(
    model: &DsGlModel,
    samples: &[Sample],
    config: &AnnealConfig,
    master_seed: u64,
) -> Result<EvalReport, CoreError> {
    let results = infer_batch(model, samples, config, master_seed)?;
    Ok(reduce_eval(samples, &results))
}

/// [`evaluate_batch`] with a [`WarmStart`] policy (see
/// [`infer_batch_warm`]).
///
/// # Errors
///
/// Returns [`CoreError::EmptyTrainingSet`] for an empty test set, or any
/// per-sample inference error.
pub fn evaluate_batch_warm(
    model: &DsGlModel,
    samples: &[Sample],
    config: &AnnealConfig,
    master_seed: u64,
    warm: WarmStart,
) -> Result<EvalReport, CoreError> {
    let results = infer_batch_warm(model, samples, config, master_seed, warm)?;
    Ok(reduce_eval(samples, &results))
}

/// Reduces per-window predictions and reports to an [`EvalReport`] in
/// sample order.
fn reduce_eval(samples: &[Sample], results: &[(Vec<f64>, AnnealReport)]) -> EvalReport {
    let mut per_sample = Vec::with_capacity(samples.len());
    let mut latency_sum = 0.0;
    let mut converged = 0usize;
    for (s, (pred, report)) in samples.iter().zip(results) {
        per_sample.push((crate::metrics::rmse(pred, &s.target), pred.len()));
        latency_sum += report.sim_time_ns;
        converged += report.converged as usize;
    }
    EvalReport {
        rmse: pooled_rmse(&per_sample),
        mean_latency_ns: latency_sum / samples.len() as f64,
        samples: samples.len(),
        converged_fraction: converged as f64 / samples.len() as f64,
    }
}

/// Result of evaluating a model over a test set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// Pooled RMSE over all samples and target variables.
    pub rmse: f64,
    /// Mean annealing latency per inference, ns.
    pub mean_latency_ns: f64,
    /// Number of samples evaluated.
    pub samples: usize,
    /// Fraction of inferences that converged within budget.
    pub converged_fraction: f64,
}

/// Evaluates annealed inference over a test set.
///
/// # Errors
///
/// Returns [`CoreError::EmptyTrainingSet`] for an empty test set, or any
/// per-sample inference error.
pub fn evaluate<R: Rng + ?Sized>(
    model: &DsGlModel,
    samples: &[Sample],
    config: &AnnealConfig,
    rng: &mut R,
) -> Result<EvalReport, CoreError> {
    if samples.is_empty() {
        return Err(CoreError::EmptyTrainingSet);
    }
    let mut per_sample = Vec::with_capacity(samples.len());
    let mut latency_sum = 0.0;
    let mut converged = 0usize;
    for s in samples {
        let (pred, report) = infer_dense(model, s, config, rng)?;
        per_sample.push((crate::metrics::rmse(&pred, &s.target), pred.len()));
        latency_sum += report.sim_time_ns;
        converged += report.converged as usize;
    }
    Ok(EvalReport {
        rmse: pooled_rmse(&per_sample),
        mean_latency_ns: latency_sum / samples.len() as f64,
        samples: samples.len(),
        converged_fraction: converged as f64 / samples.len() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VariableLayout;
    use crate::trainer::{TrainConfig, Trainer};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn trained_model(seed: u64) -> (DsGlModel, Vec<Sample>) {
        // target_i = 0.5 * history_i + 0.2 * history_{(i+1)%n}
        let n = 3;
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<Sample> = (0..50)
            .map(|_| {
                let hist: Vec<f64> = (0..n).map(|_| rng.random::<f64>() * 0.8).collect();
                let target: Vec<f64> = (0..n)
                    .map(|i| 0.5 * hist[i] + 0.2 * hist[(i + 1) % n])
                    .collect();
                Sample {
                    history: hist,
                    target,
                }
            })
            .collect();
        let layout = VariableLayout::new(1, n, 1);
        let mut model = DsGlModel::new(layout);
        let cfg = TrainConfig {
            epochs: 80,
            lr: 0.05,
            lr_decay: 0.98,
            ..TrainConfig::default()
        };
        Trainer::new(cfg)
            .fit(&mut model, &samples, &mut rng)
            .unwrap();
        (model, samples)
    }

    #[test]
    fn annealed_inference_matches_truth() {
        let (model, samples) = trained_model(1);
        let mut rng = StdRng::seed_from_u64(9);
        let (pred, report) =
            infer_dense(&model, &samples[0], &AnnealConfig::default(), &mut rng).unwrap();
        assert!(report.converged);
        let rmse = crate::metrics::rmse(&pred, &samples[0].target);
        assert!(rmse < 0.03, "annealed rmse {rmse}");
    }

    #[test]
    fn fixed_point_agrees_with_annealing() {
        let (model, samples) = trained_model(2);
        let mut rng = StdRng::seed_from_u64(10);
        let (annealed, _) =
            infer_dense(&model, &samples[1], &AnnealConfig::default(), &mut rng).unwrap();
        let fp = infer_fixed_point(&model, &samples[1], 200).unwrap();
        for (a, f) in annealed.iter().zip(&fp) {
            assert!((a - f).abs() < 5e-3, "annealed {a} vs fixed point {f}");
        }
    }

    #[test]
    fn evaluation_report() {
        let (model, samples) = trained_model(3);
        let mut rng = StdRng::seed_from_u64(11);
        let report = evaluate(&model, &samples[..10], &AnnealConfig::default(), &mut rng).unwrap();
        assert_eq!(report.samples, 10);
        assert!(report.rmse < 0.05, "rmse {}", report.rmse);
        assert!(report.mean_latency_ns > 0.0);
        assert!(report.converged_fraction > 0.9);
    }

    #[test]
    fn empty_eval_rejected() {
        let (model, _) = trained_model(4);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            evaluate(&model, &[], &AnnealConfig::default(), &mut rng),
            Err(CoreError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn batch_inference_matches_truth_and_is_reproducible() {
        let (model, samples) = trained_model(6);
        let cfg = AnnealConfig::default();
        let a = infer_batch(&model, &samples[..8], &cfg, 42).unwrap();
        let b = infer_batch(&model, &samples[..8], &cfg, 42).unwrap();
        assert_eq!(a.len(), 8);
        for ((pa, ra), (pb, _)) in a.iter().zip(&b) {
            assert_eq!(pa, pb, "same master seed must reproduce bits");
            assert!(ra.converged);
        }
        for ((pred, _), s) in a.iter().zip(&samples[..8]) {
            let rmse = crate::metrics::rmse(pred, &s.target);
            assert!(rmse < 0.05, "batch rmse {rmse}");
        }
        // A different master seed draws different annealing noise.
        let c = infer_batch(&model, &samples[..8], &cfg, 43).unwrap();
        assert!(a.iter().zip(&c).any(|((pa, _), (pc, _))| pa != pc));
    }

    #[test]
    fn batch_evaluation_report() {
        let (model, samples) = trained_model(7);
        let report = evaluate_batch(&model, &samples[..10], &AnnealConfig::default(), 1).unwrap();
        assert_eq!(report.samples, 10);
        assert!(report.rmse < 0.05, "rmse {}", report.rmse);
        assert!(report.converged_fraction > 0.9);
        let again = evaluate_batch(&model, &samples[..10], &AnnealConfig::default(), 1).unwrap();
        assert_eq!(report, again, "evaluation must be deterministic");
    }

    #[test]
    fn empty_batch_rejected() {
        let (model, _) = trained_model(8);
        assert!(matches!(
            infer_batch(&model, &[], &AnnealConfig::default(), 0),
            Err(CoreError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn warm_batch_matches_cold_within_tolerance_and_saves_steps() {
        let (model, samples) = trained_model(9);
        let cfg = AnnealConfig::default();
        let cold = infer_batch_warm(&model, &samples[..12], &cfg, 3, WarmStart::Cold).unwrap();
        let warm =
            infer_batch_warm(&model, &samples[..12], &cfg, 3, WarmStart::Chained { chunk: 6 })
                .unwrap();
        let cold_steps: usize = cold.iter().map(|(_, r)| r.steps).sum();
        let warm_steps: usize = warm.iter().map(|(_, r)| r.steps).sum();
        for ((pc, _), (pw, rw)) in cold.iter().zip(&warm) {
            assert!(rw.converged);
            let diff = crate::metrics::rmse(pc, pw);
            assert!(diff < 1e-3, "warm vs cold prediction diff {diff}");
        }
        assert!(
            warm_steps < cold_steps,
            "warm start should save steps: {warm_steps} vs {cold_steps}"
        );
        // First window of each chunk starts cold, so it matches exactly.
        assert_eq!(cold[0].0, warm[0].0);
        assert_eq!(cold[6].0, warm[6].0);
    }

    #[test]
    fn warm_batch_deterministic_across_thread_counts() {
        let (model, samples) = trained_model(10);
        let cfg = AnnealConfig::default();
        let warm = WarmStart::Chained { chunk: 4 };
        let par = infer_batch_warm(&model, &samples[..10], &cfg, 5, warm).unwrap();
        let ser = crate::Threading::Sequential
            .install(|| infer_batch_warm(&model, &samples[..10], &cfg, 5, warm))
            .unwrap();
        for ((pp, rp), (ps, rs)) in par.iter().zip(&ser) {
            assert_eq!(pp, ps, "warm batch must be thread-count independent");
            assert_eq!(rp.steps, rs.steps);
        }
    }

    #[test]
    fn warm_chunk_zero_means_one_chain() {
        let (model, samples) = trained_model(11);
        let cfg = AnnealConfig::default();
        let a = infer_batch_warm(&model, &samples[..6], &cfg, 2, WarmStart::Chained { chunk: 0 })
            .unwrap();
        let b = infer_batch_warm(&model, &samples[..6], &cfg, 2, WarmStart::Chained { chunk: 6 })
            .unwrap();
        for ((pa, _), (pb, _)) in a.iter().zip(&b) {
            assert_eq!(pa, pb);
        }
    }

    #[test]
    fn warm_evaluate_close_to_cold() {
        let (model, samples) = trained_model(12);
        let cfg = AnnealConfig::default();
        let cold = evaluate_batch(&model, &samples[..10], &cfg, 4).unwrap();
        let warm = evaluate_batch_warm(
            &model,
            &samples[..10],
            &cfg,
            4,
            WarmStart::Chained { chunk: 5 },
        )
        .unwrap();
        assert_eq!(warm.samples, 10);
        assert!((warm.rmse - cold.rmse).abs() < 1e-3);
        assert!(warm.converged_fraction > 0.9);
    }

    /// Hand-built community model: 48 free targets in three blocks of
    /// 16 with strong intra-block couplings, weak bridges, and a
    /// persistence coupling to the clamped history frame. Trained
    /// models on tiny layouts never give the coarsener anything to
    /// grab, so the multigrid tests construct the structure directly.
    fn community_model(seed: u64) -> (DsGlModel, Vec<Sample>) {
        let n = 48;
        let layout = VariableLayout::new(1, n, 1);
        let mut model = DsGlModel::new(layout);
        let mut rng = StdRng::seed_from_u64(seed);
        {
            let j = model.coupling_mut();
            for b in 0..3 {
                let (lo, hi) = (b * 16, (b + 1) * 16);
                for a in lo..hi {
                    for c in (a + 1)..hi {
                        if rng.random::<f64>() < 0.4 {
                            j.set(n + a, n + c, 0.2 + 0.2 * rng.random::<f64>());
                        }
                    }
                }
            }
            for b in 0..2 {
                j.set(n + (b + 1) * 16 - 1, n + (b + 1) * 16, 0.05);
            }
            for i in 0..n {
                j.set(i, n + i, 0.6);
            }
        }
        let row_sums: Vec<f64> = (0..2 * n).map(|v| model.coupling().row_abs_sum(v)).collect();
        for (v, sum) in row_sums.into_iter().enumerate() {
            model.h_mut()[v] = -(1.0 + sum);
        }
        let samples: Vec<Sample> = (0..8)
            .map(|_| {
                let hist: Vec<f64> = (0..n).map(|_| rng.random::<f64>() * 0.8 - 0.4).collect();
                let target = vec![0.0; n];
                Sample {
                    history: hist,
                    target,
                }
            })
            .collect();
        (model, samples)
    }

    #[test]
    fn multigrid_batch_matches_cold_and_saves_steps() {
        let (model, samples) = community_model(20);
        let cfg = AnnealConfig::default();
        let cold = infer_batch_warm(&model, &samples, &cfg, 6, WarmStart::Cold).unwrap();
        let mg = infer_batch_warm(
            &model,
            &samples,
            &cfg,
            6,
            WarmStart::Multigrid {
                levels: 1,
                coarse_tol: 1e-3,
            },
        )
        .unwrap();
        let cold_steps: usize = cold.iter().map(|(_, r)| r.steps).sum();
        let mg_steps: usize = mg.iter().map(|(_, r)| r.steps).sum();
        for ((pc, _), (pm, rm)) in cold.iter().zip(&mg) {
            assert!(rm.converged);
            let diff = crate::metrics::rmse(pc, pm);
            assert!(diff < 5e-3, "multigrid vs cold prediction diff {diff}");
        }
        assert!(
            mg_steps < cold_steps,
            "multigrid warm start should save fine steps: {mg_steps} vs {cold_steps}"
        );
    }

    #[test]
    fn multigrid_batch_is_bit_deterministic() {
        let (model, samples) = community_model(21);
        let cfg = AnnealConfig::default();
        let warm = WarmStart::Multigrid {
            levels: 2,
            coarse_tol: 1e-3,
        };
        let a = infer_batch_warm(&model, &samples, &cfg, 9, warm).unwrap();
        let b = infer_batch_warm(&model, &samples, &cfg, 9, warm).unwrap();
        let ser = crate::Threading::Sequential
            .install(|| infer_batch_warm(&model, &samples, &cfg, 9, warm))
            .unwrap();
        for (((pa, ra), (pb, _)), (ps, rs)) in a.iter().zip(&b).zip(&ser) {
            assert_eq!(pa, pb, "multigrid rerun must reproduce bits");
            assert_eq!(pa, ps, "multigrid must be thread-count independent");
            assert_eq!(ra.steps, rs.steps);
        }
    }

    #[test]
    fn multigrid_on_tiny_model_falls_back_to_cold_bits() {
        // n = 3 free nodes is far below the coarsening floor, so the
        // warm start must silently decline and leave every bit of the
        // cold path untouched.
        let (model, samples) = trained_model(22);
        let cfg = AnnealConfig::default();
        let cold =
            infer_batch_warm(&model, &samples[..6], &cfg, 13, WarmStart::Cold).unwrap();
        let mg = infer_batch_warm(
            &model,
            &samples[..6],
            &cfg,
            13,
            WarmStart::Multigrid {
                levels: 1,
                coarse_tol: 1e-3,
            },
        )
        .unwrap();
        for ((pc, rc), (pm, rm)) in cold.iter().zip(&mg) {
            assert_eq!(pc, pm, "fallback must be bit-identical to cold");
            assert_eq!(rc.steps, rm.steps);
        }
    }

    #[test]
    fn multigrid_batch_records_mg_instruments() {
        let (model, samples) = community_model(23);
        let cfg = AnnealConfig::default();
        let sink = TelemetrySink::enabled();
        let mg = infer_batch_warm_instrumented(
            &model,
            &samples,
            &cfg,
            6,
            WarmStart::Multigrid {
                levels: 1,
                coarse_tol: 1e-3,
            },
            &sink,
        )
        .unwrap();
        assert_eq!(mg.len(), samples.len());
        let snap = sink.snapshot();
        let levels = snap
            .get(dsgl_ising::multigrid::instruments::LEVELS)
            .expect("mg.levels recorded");
        assert_eq!(levels.count as usize, samples.len());
        assert!(levels.sum > 0.0, "at least one level per window");
        assert!(
            snap.counter(dsgl_ising::multigrid::instruments::COARSE_STEPS) > 0,
            "coarse solves should run"
        );
        assert!(
            snap.counter(dsgl_ising::multigrid::instruments::PROLONGATIONS) > 0,
            "prolongations should run"
        );
        assert!(
            snap.counter(dsgl_ising::multigrid::instruments::FINE_STEPS_SAVED) > 0,
            "warm fine solves should come in under budget"
        );
        // The instrumented path reports the same bits as the plain one.
        let plain = infer_batch_warm(
            &model,
            &samples,
            &cfg,
            6,
            WarmStart::Multigrid {
                levels: 1,
                coarse_tol: 1e-3,
            },
        )
        .unwrap();
        for ((pi, _), (pp, _)) in mg.iter().zip(&plain) {
            assert_eq!(pi, pp, "telemetry must not change inference bits");
        }
    }

    #[test]
    fn latency_reflects_budget() {
        let (model, samples) = trained_model(5);
        let mut rng = StdRng::seed_from_u64(12);
        let mut cfg = AnnealConfig::with_budget(5.0);
        cfg.tolerance = 0.0; // never converge early
        let (_, report) = infer_dense(&model, &samples[0], &cfg, &mut rng).unwrap();
        assert!((report.sim_time_ns - 5.0).abs() < cfg.dt_ns + 1e-9);
    }
}
