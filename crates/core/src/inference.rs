//! GL inference as natural annealing (paper Sec. III.C).

use crate::error::CoreError;
use crate::metrics::pooled_rmse;
use crate::model::DsGlModel;
use crate::windows::observed_state;
use dsgl_data::Sample;
use dsgl_ising::{AnnealConfig, AnnealReport, RealValuedDspu};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Builds a [`RealValuedDspu`] programmed with the model's parameters,
/// history variables clamped to the sample's observations and target
/// variables randomised.
///
/// # Errors
///
/// Returns shape mismatches and invalid-parameter errors.
pub fn machine_for_sample<R: Rng + ?Sized>(
    model: &DsGlModel,
    sample: &Sample,
    rng: &mut R,
) -> Result<RealValuedDspu, CoreError> {
    let layout = model.layout();
    let state = observed_state(&layout, sample)?;
    let mut dspu = RealValuedDspu::new(model.coupling().clone(), model.h().to_vec())?;
    for (v, &obs) in state.iter().enumerate().take(layout.history_len()) {
        dspu.clamp(v, obs.clamp(-dspu.rail(), dspu.rail()))?;
    }
    dspu.randomize_free(rng);
    Ok(dspu)
}

/// Runs one annealed inference on the full (dense or decomposed) model:
/// clamp history, anneal, read the target block.
///
/// Returns the predicted target frame and the annealing report (whose
/// `sim_time_ns` is the inference latency).
///
/// # Errors
///
/// Returns shape mismatches and invalid-parameter errors.
pub fn infer_dense<R: Rng + ?Sized>(
    model: &DsGlModel,
    sample: &Sample,
    config: &AnnealConfig,
    rng: &mut R,
) -> Result<(Vec<f64>, AnnealReport), CoreError> {
    let mut dspu = machine_for_sample(model, sample, rng)?;
    let report = dspu.run(config, rng);
    let layout = model.layout();
    Ok((dspu.state()[layout.target_range()].to_vec(), report))
}

/// Fixed-point inference without simulating the analog dynamics: damped
/// iteration of the regression formula over the target block. Fast
/// surrogate used by parameter sweeps; agrees with annealed inference
/// when the contraction projection held during training.
///
/// # Errors
///
/// Returns shape mismatches.
pub fn infer_fixed_point(
    model: &DsGlModel,
    sample: &Sample,
    iterations: usize,
) -> Result<Vec<f64>, CoreError> {
    let layout = model.layout();
    let mut state = observed_state(&layout, sample)?;
    let target: Vec<usize> = layout.target_range().collect();
    for _ in 0..iterations {
        for &v in &target {
            let row = model.coupling().row(v);
            let mut dot = 0.0;
            for (j, &s) in state.iter().enumerate() {
                dot += row[j] * s;
            }
            state[v] = dot / (-model.h()[v]);
        }
    }
    Ok(state[layout.target_range()].to_vec())
}

/// Runs one annealed *imputation* inference: besides the history block,
/// the listed target-frame entries (indices into the target frame) are
/// also clamped to their ground-truth values, and only the remaining
/// unknown targets anneal. This is the paper's core definition of graph
/// learning — "acquisition of unknown graph node features using observed
/// node features" — and the regime where coupling the outputs lets
/// observed nodes inform unobserved ones through the machine's joint
/// relaxation.
///
/// Returns the full predicted target frame (observed entries echo their
/// clamped values) and the annealing report.
///
/// # Errors
///
/// Returns shape mismatches, invalid parameters, and out-of-range
/// observed indices.
pub fn infer_dense_imputation<R: Rng + ?Sized>(
    model: &DsGlModel,
    sample: &Sample,
    observed_targets: &[usize],
    config: &AnnealConfig,
    rng: &mut R,
) -> Result<(Vec<f64>, AnnealReport), CoreError> {
    let layout = model.layout();
    let mut dspu = machine_for_sample(model, sample, rng)?;
    for &t_idx in observed_targets {
        if t_idx >= layout.target_len() {
            return Err(CoreError::SampleShapeMismatch {
                what: "observed target index",
                expected: layout.target_len(),
                actual: t_idx,
            });
        }
        let v = layout.history_len() + t_idx;
        let value = sample.target[t_idx].clamp(-dspu.rail(), dspu.rail());
        dspu.clamp(v, value)?;
    }
    let report = dspu.run(config, rng);
    Ok((dspu.state()[layout.target_range()].to_vec(), report))
}

/// Fixed-point imputation (see [`infer_dense_imputation`]): damped
/// iteration with the observed target entries held at their true values.
///
/// # Errors
///
/// Returns shape mismatches and out-of-range observed indices.
pub fn infer_fixed_point_imputation(
    model: &DsGlModel,
    sample: &Sample,
    observed_targets: &[usize],
    iterations: usize,
) -> Result<Vec<f64>, CoreError> {
    let layout = model.layout();
    let mut state = observed_state(&layout, sample)?;
    let mut held = vec![false; layout.target_len()];
    for &t_idx in observed_targets {
        if t_idx >= layout.target_len() {
            return Err(CoreError::SampleShapeMismatch {
                what: "observed target index",
                expected: layout.target_len(),
                actual: t_idx,
            });
        }
        state[layout.history_len() + t_idx] = sample.target[t_idx];
        held[t_idx] = true;
    }
    let target: Vec<usize> = layout.target_range().collect();
    for _ in 0..iterations {
        for (t_idx, &v) in target.iter().enumerate() {
            if held[t_idx] {
                continue;
            }
            let row = model.coupling().row(v);
            let mut dot = 0.0;
            for (j, &s) in state.iter().enumerate() {
                dot += row[j] * s;
            }
            state[v] = dot / (-model.h()[v]);
        }
    }
    Ok(state[layout.target_range()].to_vec())
}

/// Result of evaluating a model over a test set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// Pooled RMSE over all samples and target variables.
    pub rmse: f64,
    /// Mean annealing latency per inference, ns.
    pub mean_latency_ns: f64,
    /// Number of samples evaluated.
    pub samples: usize,
    /// Fraction of inferences that converged within budget.
    pub converged_fraction: f64,
}

/// Evaluates annealed inference over a test set.
///
/// # Errors
///
/// Returns [`CoreError::EmptyTrainingSet`] for an empty test set, or any
/// per-sample inference error.
pub fn evaluate<R: Rng + ?Sized>(
    model: &DsGlModel,
    samples: &[Sample],
    config: &AnnealConfig,
    rng: &mut R,
) -> Result<EvalReport, CoreError> {
    if samples.is_empty() {
        return Err(CoreError::EmptyTrainingSet);
    }
    let mut per_sample = Vec::with_capacity(samples.len());
    let mut latency_sum = 0.0;
    let mut converged = 0usize;
    for s in samples {
        let (pred, report) = infer_dense(model, s, config, rng)?;
        per_sample.push((crate::metrics::rmse(&pred, &s.target), pred.len()));
        latency_sum += report.sim_time_ns;
        converged += report.converged as usize;
    }
    Ok(EvalReport {
        rmse: pooled_rmse(&per_sample),
        mean_latency_ns: latency_sum / samples.len() as f64,
        samples: samples.len(),
        converged_fraction: converged as f64 / samples.len() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VariableLayout;
    use crate::trainer::{TrainConfig, Trainer};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn trained_model(seed: u64) -> (DsGlModel, Vec<Sample>) {
        // target_i = 0.5 * history_i + 0.2 * history_{(i+1)%n}
        let n = 3;
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<Sample> = (0..50)
            .map(|_| {
                let hist: Vec<f64> = (0..n).map(|_| rng.random::<f64>() * 0.8).collect();
                let target: Vec<f64> = (0..n)
                    .map(|i| 0.5 * hist[i] + 0.2 * hist[(i + 1) % n])
                    .collect();
                Sample {
                    history: hist,
                    target,
                }
            })
            .collect();
        let layout = VariableLayout::new(1, n, 1);
        let mut model = DsGlModel::new(layout);
        let cfg = TrainConfig {
            epochs: 80,
            lr: 0.05,
            lr_decay: 0.98,
            ..TrainConfig::default()
        };
        Trainer::new(cfg)
            .fit(&mut model, &samples, &mut rng)
            .unwrap();
        (model, samples)
    }

    #[test]
    fn annealed_inference_matches_truth() {
        let (model, samples) = trained_model(1);
        let mut rng = StdRng::seed_from_u64(9);
        let (pred, report) =
            infer_dense(&model, &samples[0], &AnnealConfig::default(), &mut rng).unwrap();
        assert!(report.converged);
        let rmse = crate::metrics::rmse(&pred, &samples[0].target);
        assert!(rmse < 0.03, "annealed rmse {rmse}");
    }

    #[test]
    fn fixed_point_agrees_with_annealing() {
        let (model, samples) = trained_model(2);
        let mut rng = StdRng::seed_from_u64(10);
        let (annealed, _) =
            infer_dense(&model, &samples[1], &AnnealConfig::default(), &mut rng).unwrap();
        let fp = infer_fixed_point(&model, &samples[1], 200).unwrap();
        for (a, f) in annealed.iter().zip(&fp) {
            assert!((a - f).abs() < 5e-3, "annealed {a} vs fixed point {f}");
        }
    }

    #[test]
    fn evaluation_report() {
        let (model, samples) = trained_model(3);
        let mut rng = StdRng::seed_from_u64(11);
        let report = evaluate(&model, &samples[..10], &AnnealConfig::default(), &mut rng).unwrap();
        assert_eq!(report.samples, 10);
        assert!(report.rmse < 0.05, "rmse {}", report.rmse);
        assert!(report.mean_latency_ns > 0.0);
        assert!(report.converged_fraction > 0.9);
    }

    #[test]
    fn empty_eval_rejected() {
        let (model, _) = trained_model(4);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            evaluate(&model, &[], &AnnealConfig::default(), &mut rng),
            Err(CoreError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn latency_reflects_budget() {
        let (model, samples) = trained_model(5);
        let mut rng = StdRng::seed_from_u64(12);
        let mut cfg = AnnealConfig::with_budget(5.0);
        cfg.tolerance = 0.0; // never converge early
        let (_, report) = infer_dense(&model, &samples[0], &cfg, &mut rng).unwrap();
        assert!((report.sim_time_ns - 5.0).abs() < cfg.dt_ns + 1e-9);
    }
}
