//! Interconnect patterns for decomposed dynamical systems
//! (paper Sec. IV.B(3), Fig. 6).
//!
//! Super-communities sit on a 2-D PE grid; couplings between two PEs are
//! only realisable when the pattern allows a physical path:
//!
//! - **Chain**: consecutive PEs in boustrophedon (snake) order — the
//!   cheapest wiring;
//! - **Mesh**: all 4-neighbour grid links (a superset of Chain);
//! - **DMesh**: Mesh plus diagonal links (Hu et al.'s diagonally-linked
//!   mesh);
//! - **Wormholes**: a small budget of arbitrary PE-pair
//!   super-connections for the unavoidable long-range outlier couplings.

use dsgl_ising::Coupling;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// The inter-PE connection pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternKind {
    /// Consecutive PEs in snake order.
    Chain,
    /// 4-neighbour grid links (includes all Chain links).
    Mesh,
    /// Mesh plus diagonals.
    DMesh,
}

impl PatternKind {
    /// All patterns, weakest first.
    pub const ALL: [PatternKind; 3] = [PatternKind::Chain, PatternKind::Mesh, PatternKind::DMesh];

    /// Human-readable name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            PatternKind::Chain => "Chain",
            PatternKind::Mesh => "Mesh",
            PatternKind::DMesh => "DMesh",
        }
    }
}

/// Grid coordinate of a PE (row-major indexing).
fn coord(grid: (usize, usize), pe: usize) -> (usize, usize) {
    (pe / grid.1, pe % grid.1)
}

/// Position of a PE along the boustrophedon (snake) traversal of the
/// grid: row 0 left→right, row 1 right→left, and so on.
pub fn snake_position(grid: (usize, usize), pe: usize) -> usize {
    let (r, c) = coord(grid, pe);
    if r % 2 == 0 {
        r * grid.1 + c
    } else {
        r * grid.1 + (grid.1 - 1 - c)
    }
}

/// Whether the pattern directly connects two PEs (same PE is always
/// connected through its internal crossbar).
///
/// # Panics
///
/// Panics if either PE is outside the grid.
pub fn pe_allowed(kind: PatternKind, grid: (usize, usize), a: usize, b: usize) -> bool {
    let pes = grid.0 * grid.1;
    assert!(a < pes && b < pes, "PE index outside grid");
    if a == b {
        return true;
    }
    let (ar, ac) = coord(grid, a);
    let (br, bc) = coord(grid, b);
    let dr = ar.abs_diff(br);
    let dc = ac.abs_diff(bc);
    match kind {
        PatternKind::Chain => {
            snake_position(grid, a).abs_diff(snake_position(grid, b)) == 1
        }
        PatternKind::Mesh => dr + dc == 1,
        PatternKind::DMesh => dr.max(dc) == 1,
    }
}

/// A set of wormhole super-connections between PE pairs (stored with
/// `min <= max` normalisation).
pub type WormholeSet = HashSet<(usize, usize)>;

fn pair(a: usize, b: usize) -> (usize, usize) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Plans up to `budget` wormholes: the pattern-forbidden PE pairs
/// carrying the largest aggregate coupling magnitude get
/// super-connections (paper: "rare connections between any two
/// super-communities").
///
/// # Panics
///
/// Panics if `var_to_pe` is shorter than the coupling matrix.
pub fn plan_wormholes(
    coupling: &Coupling,
    var_to_pe: &[usize],
    grid: (usize, usize),
    kind: PatternKind,
    budget: usize,
) -> WormholeSet {
    assert!(
        var_to_pe.len() >= coupling.n(),
        "placement does not cover all variables"
    );
    let mut demand: HashMap<(usize, usize), f64> = HashMap::new();
    for (i, j, w) in coupling.nonzeros() {
        let (pa, pb) = (var_to_pe[i], var_to_pe[j]);
        if pa != pb && !pe_allowed(kind, grid, pa, pb) {
            *demand.entry(pair(pa, pb)).or_insert(0.0) += w.abs();
        }
    }
    let mut ranked: Vec<((usize, usize), f64)> = demand.into_iter().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite demand").then(a.0.cmp(&b.0)));
    ranked.into_iter().take(budget).map(|(p, _)| p).collect()
}

/// Builds the structural coupling mask for a placement under a pattern:
/// entry `i·n + j` is `true` when variables `i` and `j` may stay
/// coupled — same PE, pattern-adjacent PEs, or a planned wormhole.
///
/// # Panics
///
/// Panics if `var_to_pe.len() != n_vars`.
pub fn build_mask(
    n_vars: usize,
    var_to_pe: &[usize],
    grid: (usize, usize),
    kind: PatternKind,
    wormholes: &WormholeSet,
) -> Vec<bool> {
    assert_eq!(var_to_pe.len(), n_vars, "placement does not cover variables");
    // Precompute the PE-pair admissibility table.
    let pes = grid.0 * grid.1;
    let mut pe_ok = vec![false; pes * pes];
    for a in 0..pes {
        for b in 0..pes {
            pe_ok[a * pes + b] =
                pe_allowed(kind, grid, a, b) || wormholes.contains(&pair(a, b));
        }
    }
    let mut mask = vec![false; n_vars * n_vars];
    for i in 0..n_vars {
        for j in 0..n_vars {
            mask[i * n_vars + j] = pe_ok[var_to_pe[i] * pes + var_to_pe[j]];
        }
    }
    mask
}

/// The King's-graph node-level topology of prior scalable Ising machines
/// (paper Sec. I: "partially connected interconnects with uniform
/// patterns, such as King's graph topology, fall short in handling
/// high-degree nodes").
///
/// Variables are laid out in raster order on a `⌈n/cols⌉ × cols` grid of
/// *physical nodes* and may couple only within Chebyshev distance 1
/// (8 neighbours). Unlike DS-GL's community-aware decomposition, the
/// placement ignores the problem's structure entirely — which is exactly
/// why it fails for graphs with high-degree nodes and long-range
/// couplings; the ablation experiment quantifies that.
///
/// # Panics
///
/// Panics if `cols == 0`.
pub fn kings_graph_mask(n_vars: usize, cols: usize) -> Vec<bool> {
    assert!(cols > 0, "king's grid needs at least one column");
    let coord = |v: usize| (v / cols, v % cols);
    let mut mask = vec![false; n_vars * n_vars];
    for i in 0..n_vars {
        let (ri, ci) = coord(i);
        for j in 0..n_vars {
            let (rj, cj) = coord(j);
            if ri.abs_diff(rj).max(ci.abs_diff(cj)) <= 1 {
                mask[i * n_vars + j] = true;
            }
        }
    }
    mask
}

/// Fraction of coupling magnitude a mask would remove — the accuracy
/// pressure a pattern puts on fine-tuning.
///
/// # Panics
///
/// Panics if `mask.len() != n²`.
pub fn masked_weight_fraction(coupling: &Coupling, mask: &[bool]) -> f64 {
    let n = coupling.n();
    assert_eq!(mask.len(), n * n, "mask length mismatch");
    let mut kept = 0.0;
    let mut total = 0.0;
    for (i, j, w) in coupling.nonzeros() {
        total += w.abs();
        if mask[i * n + j] && mask[j * n + i] {
            kept += w.abs();
        }
    }
    if total == 0.0 {
        0.0
    } else {
        1.0 - kept / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GRID: (usize, usize) = (2, 2); // PEs 0 1 / 2 3

    #[test]
    fn snake_order_2x2() {
        // Snake: 0, 1 then row 1 reversed: 3, 2.
        assert_eq!(snake_position(GRID, 0), 0);
        assert_eq!(snake_position(GRID, 1), 1);
        assert_eq!(snake_position(GRID, 3), 2);
        assert_eq!(snake_position(GRID, 2), 3);
    }

    #[test]
    fn chain_follows_snake() {
        assert!(pe_allowed(PatternKind::Chain, GRID, 0, 1));
        assert!(pe_allowed(PatternKind::Chain, GRID, 1, 3));
        assert!(pe_allowed(PatternKind::Chain, GRID, 3, 2));
        assert!(!pe_allowed(PatternKind::Chain, GRID, 0, 2)); // not consecutive in snake
        assert!(!pe_allowed(PatternKind::Chain, GRID, 0, 3));
    }

    #[test]
    fn mesh_is_grid_neighbours() {
        assert!(pe_allowed(PatternKind::Mesh, GRID, 0, 1));
        assert!(pe_allowed(PatternKind::Mesh, GRID, 0, 2));
        assert!(!pe_allowed(PatternKind::Mesh, GRID, 0, 3)); // diagonal
    }

    #[test]
    fn dmesh_adds_diagonals() {
        assert!(pe_allowed(PatternKind::DMesh, GRID, 0, 3));
        assert!(pe_allowed(PatternKind::DMesh, GRID, 1, 2));
        let grid3 = (3, 3);
        assert!(!pe_allowed(PatternKind::DMesh, grid3, 0, 2)); // two apart
    }

    #[test]
    fn pattern_inclusion_chain_mesh_dmesh() {
        // Chain ⊆ Mesh ⊆ DMesh on a 3x4 grid.
        let grid = (3, 4);
        for a in 0..12 {
            for b in 0..12 {
                if pe_allowed(PatternKind::Chain, grid, a, b) {
                    assert!(
                        pe_allowed(PatternKind::Mesh, grid, a, b),
                        "chain link {a}-{b} missing from mesh"
                    );
                }
                if pe_allowed(PatternKind::Mesh, grid, a, b) {
                    assert!(
                        pe_allowed(PatternKind::DMesh, grid, a, b),
                        "mesh link {a}-{b} missing from dmesh"
                    );
                }
            }
        }
    }

    #[test]
    fn same_pe_always_allowed() {
        for kind in PatternKind::ALL {
            assert!(pe_allowed(kind, GRID, 2, 2));
        }
    }

    #[test]
    fn wormholes_pick_heaviest_forbidden_pair() {
        // 4 variables on 4 PEs; forbidden diagonal 0-3 carries the most
        // weight, so it gets the single wormhole.
        let mut j = Coupling::zeros(4);
        j.set(0, 3, 5.0); // PE0-PE3: forbidden under Mesh
        j.set(1, 2, 0.1); // PE1-PE2: forbidden under Mesh
        j.set(0, 1, 9.0); // PE0-PE1: allowed, irrelevant
        let var_to_pe = [0, 1, 2, 3];
        let w = plan_wormholes(&j, &var_to_pe, GRID, PatternKind::Mesh, 1);
        assert_eq!(w.len(), 1);
        assert!(w.contains(&(0, 3)));
    }

    #[test]
    fn mask_respects_pattern_and_wormholes() {
        let var_to_pe = [0, 1, 2, 3];
        let mut wormholes = WormholeSet::new();
        wormholes.insert((0, 3));
        let mask = build_mask(4, &var_to_pe, GRID, PatternKind::Mesh, &wormholes);
        let at = |i: usize, j: usize| mask[i * 4 + j];
        assert!(at(0, 1), "mesh link");
        assert!(at(0, 2), "mesh link");
        assert!(at(0, 3), "wormhole");
        assert!(!at(1, 2), "forbidden diagonal without wormhole");
        assert!(at(2, 2), "same PE");
        // Symmetry.
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(at(i, j), at(j, i));
            }
        }
    }

    #[test]
    fn kings_graph_is_eight_neighbour() {
        // 3x3 raster of 9 variables: the centre sees everyone, corners
        // see their 3 neighbours + self.
        let mask = kings_graph_mask(9, 3);
        let at = |i: usize, j: usize| mask[i * 9 + j];
        for j in 0..9 {
            assert!(at(4, j), "centre must reach {j}");
        }
        assert!(at(0, 1) && at(0, 3) && at(0, 4));
        assert!(!at(0, 2), "corner must not reach across the row");
        assert!(!at(0, 8), "corner must not reach the far corner");
        // Symmetry.
        for i in 0..9 {
            for j in 0..9 {
                assert_eq!(at(i, j), at(j, i));
            }
        }
    }

    #[test]
    fn kings_graph_removes_long_range_weight() {
        let n = 16;
        let mut j = Coupling::zeros(n);
        j.set(0, 15, 10.0); // long-range, heavy
        j.set(0, 1, 0.1); // local
        let mask = kings_graph_mask(n, 4);
        assert!((masked_weight_fraction(&j, &mask) - 10.0 / 10.1).abs() < 1e-12);
    }

    #[test]
    fn masked_weight_fraction_counts() {
        let mut j = Coupling::zeros(4);
        j.set(0, 1, 1.0);
        j.set(1, 2, 3.0);
        let var_to_pe = [0, 1, 2, 3];
        let mask = build_mask(4, &var_to_pe, GRID, PatternKind::Mesh, &WormholeSet::new());
        // (0,1) allowed, (1,2) forbidden -> 3/4 of the weight removed.
        assert!((masked_weight_fraction(&j, &mask) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn stronger_patterns_remove_less() {
        // Random-ish couplings over a 3x3 grid of single-variable PEs.
        let n = 9;
        let mut j = Coupling::zeros(n);
        let mut w = 0.1;
        for i in 0..n {
            for k in (i + 1)..n {
                j.set(i, k, w);
                w += 0.07;
            }
        }
        let var_to_pe: Vec<usize> = (0..n).collect();
        let grid = (3, 3);
        let removed: Vec<f64> = PatternKind::ALL
            .iter()
            .map(|&kind| {
                let mask = build_mask(n, &var_to_pe, grid, kind, &WormholeSet::new());
                masked_weight_fraction(&j, &mask)
            })
            .collect();
        assert!(removed[0] >= removed[1], "chain {} mesh {}", removed[0], removed[1]);
        assert!(removed[1] >= removed[2], "mesh {} dmesh {}", removed[1], removed[2]);
    }
}
