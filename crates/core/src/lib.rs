//! DS-GL: nature-powered graph learning on real-valued dynamical systems.
//!
//! This crate is the paper's primary contribution. It turns a
//! spatio-temporal graph-learning problem into the natural-annealing
//! process of a parameterised dynamical system:
//!
//! 1. **Variable layout** ([`VariableLayout`]): a window of `W` history
//!    frames plus the one-step-ahead target frame becomes one system
//!    state of `(W+1)·N·F` coupled variables.
//! 2. **Training** ([`Trainer`]): the coupling matrix `J` (symmetric,
//!    zero diagonal) and self-reactions `h` (strictly negative) are
//!    learned by regressing every target variable from all others via the
//!    fixed-point formula `σᵢ = -Σⱼ Jᵢⱼσⱼ / hᵢ` (paper Eq. 10), with a
//!    contraction projection that keeps annealing convergent.
//! 3. **Inference** ([`inference`]): observed history variables are
//!    clamped, the machine anneals, and the equilibrium of the target
//!    block is the prediction (paper Sec. III.C).
//! 4. **Decomposition** ([`decompose`]): prune to a target density,
//!    extract communities (Louvain), redistribute onto a PE grid, mask to
//!    an interconnect pattern (Chain / Mesh / DMesh + Wormholes), and
//!    fine-tune under the mask (paper Sec. IV.B, Fig. 5).
//!
//! # Example: train and infer on a toy series
//!
//! ```
//! use dsgl_core::{DsGlModel, Trainer, TrainConfig, VariableLayout, inference};
//! use dsgl_data::{covid, WindowConfig};
//! use dsgl_ising::AnnealConfig;
//! use rand::SeedableRng;
//!
//! let ds = covid::generate(1);
//! let wc = WindowConfig::one_step(2);
//! let (train, _, test) = ds.split_windows(&wc, 0.2, 0.0);
//! let layout = VariableLayout::new(2, ds.node_count(), ds.feature_count());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut model = DsGlModel::new(layout);
//! let cfg = TrainConfig { epochs: 2, ..TrainConfig::default() };
//! Trainer::new(cfg).fit(&mut model, &train[..20.min(train.len())], &mut rng).unwrap();
//! let (pred, report) = inference::infer_dense(
//!     &model, &test[0], &AnnealConfig::default(), &mut rng).unwrap();
//! assert_eq!(pred.len(), ds.node_count());
//! assert!(report.sim_time_ns > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod error;
pub mod guard;
pub mod inference;
pub mod metrics;
pub mod model;
pub mod patterns;
pub mod ridge;
pub mod sparsify;
pub mod telemetry;
pub mod threading;
pub mod tracing;
pub mod trainer;
pub mod windows;

pub use dsgl_ising::CancelToken;
pub use error::CoreError;
pub use guard::{GuardedAnneal, HealthReport, RetryPolicy};
pub use inference::{lockstep_enabled, set_lockstep_enabled, WarmStart};
pub use model::{DsGlModel, VariableLayout};
pub use patterns::PatternKind;
pub use sparsify::{decompose, DecomposeConfig, DecomposedModel};
pub use telemetry::{MetricsSnapshot, TelemetrySink};
pub use threading::Threading;
pub use tracing::{FlightDump, FlightRecorder, SpanCollector, SpanRecord, TraceScope};
pub use trainer::{TrainConfig, TrainReport, Trainer};
