//! The DS-GL model: a parameterised dynamical system over windowed
//! spatio-temporal variables.

use crate::error::CoreError;
use dsgl_ising::Coupling;
use serde::{Deserialize, Serialize};

/// How a forecasting window maps onto dynamical-system variables.
///
/// A window of `history` frames plus the target frame is flattened into
/// one state vector: variable `(t, node, feature)` lives at index
/// `(t·nodes + node)·features + feature`, with `t == history` being the
/// target frame. The history block is clamped at inference; the target
/// block anneals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VariableLayout {
    history: usize,
    nodes: usize,
    features: usize,
    #[serde(default = "default_horizon")]
    horizon: usize,
}

fn default_horizon() -> usize {
    1
}

impl VariableLayout {
    /// Creates a layout of `history` observed frames over `nodes` graph
    /// nodes with `features` features each.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(history: usize, nodes: usize, features: usize) -> Self {
        Self::with_horizon(history, nodes, features, 1)
    }

    /// Creates a layout predicting `horizon` future frames jointly: the
    /// system has `(history + horizon)·N·F` variables, the last
    /// `horizon` frames annealing free. One-step forecasting is
    /// `horizon = 1`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn with_horizon(history: usize, nodes: usize, features: usize, horizon: usize) -> Self {
        assert!(history > 0, "history must be at least 1");
        assert!(nodes > 0, "need at least one node");
        assert!(features > 0, "need at least one feature");
        assert!(horizon > 0, "horizon must be at least 1");
        VariableLayout {
            history,
            nodes,
            features,
            horizon,
        }
    }

    /// Number of predicted future frames `H`.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Length of the flattened target block (`H·N·F`).
    pub fn target_len(&self) -> usize {
        self.horizon * self.frame_len()
    }

    /// Number of history frames `W`.
    pub fn history(&self) -> usize {
        self.history
    }

    /// Number of graph nodes `N`.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Features per node `F`.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Values per frame (`N·F`).
    pub fn frame_len(&self) -> usize {
        self.nodes * self.features
    }

    /// Length of the flattened history block (`W·N·F`).
    pub fn history_len(&self) -> usize {
        self.history * self.frame_len()
    }

    /// Total system variables (`(W+H)·N·F`).
    pub fn total(&self) -> usize {
        (self.history + self.horizon) * self.frame_len()
    }

    /// Variable index of `(frame t, node, feature)`; frames
    /// `history..history+horizon` are the target frames.
    ///
    /// # Panics
    ///
    /// Panics when any coordinate is out of range.
    pub fn index(&self, t: usize, node: usize, feature: usize) -> usize {
        assert!(t < self.history + self.horizon, "frame out of range");
        assert!(node < self.nodes, "node out of range");
        assert!(feature < self.features, "feature out of range");
        (t * self.nodes + node) * self.features + feature
    }

    /// Index range of the target block.
    pub fn target_range(&self) -> std::ops::Range<usize> {
        self.history_len()..self.total()
    }

    /// Whether variable `v` belongs to the target block.
    pub fn is_target(&self, v: usize) -> bool {
        v >= self.history_len() && v < self.total()
    }

    /// The graph node a variable refers to.
    ///
    /// # Panics
    ///
    /// Panics when `v` is out of range.
    pub fn node_of(&self, v: usize) -> usize {
        assert!(v < self.total(), "variable out of range");
        (v / self.features) % self.nodes
    }
}

/// A trained (or trainable) DS-GL dynamical system.
///
/// Holds the symmetric coupling matrix `J`, the strictly negative
/// self-reactions `h`, and the variable layout. Invariants: `J` is
/// symmetric with zero diagonal (enforced by [`Coupling`]); every
/// `h[i] < 0` (enforced by the trainer's projection and checked when the
/// model is loaded into a machine).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DsGlModel {
    layout: VariableLayout,
    coupling: Coupling,
    h: Vec<f64>,
}

impl DsGlModel {
    /// Creates an untrained model: zero couplings, `h = -1` everywhere.
    pub fn new(layout: VariableLayout) -> Self {
        let total = layout.total();
        DsGlModel {
            layout,
            coupling: Coupling::zeros(total),
            h: vec![-1.0; total],
        }
    }

    /// Builds a model from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::SampleShapeMismatch`] on dimension mismatches
    /// and [`CoreError::InvalidConfig`] when any `h >= 0`.
    pub fn from_parameters(
        layout: VariableLayout,
        coupling: Coupling,
        h: Vec<f64>,
    ) -> Result<Self, CoreError> {
        let total = layout.total();
        if coupling.n() != total {
            return Err(CoreError::SampleShapeMismatch {
                what: "coupling",
                expected: total,
                actual: coupling.n(),
            });
        }
        if h.len() != total {
            return Err(CoreError::SampleShapeMismatch {
                what: "h",
                expected: total,
                actual: h.len(),
            });
        }
        if let Some((i, &v)) = h.iter().enumerate().find(|(_, &v)| v >= 0.0 || !v.is_finite()) {
            return Err(CoreError::InvalidConfig {
                reason: format!("h[{i}] = {v} must be strictly negative and finite"),
            });
        }
        Ok(DsGlModel {
            layout,
            coupling,
            h,
        })
    }

    /// The variable layout.
    pub fn layout(&self) -> VariableLayout {
        self.layout
    }

    /// The coupling matrix.
    pub fn coupling(&self) -> &Coupling {
        &self.coupling
    }

    /// Mutable coupling access (the trainer and decomposition pipeline
    /// use this; symmetry is preserved by [`Coupling`] itself).
    pub fn coupling_mut(&mut self) -> &mut Coupling {
        &mut self.coupling
    }

    /// The self-reaction vector.
    pub fn h(&self) -> &[f64] {
        &self.h
    }

    /// Mutable self-reactions (the trainer projects these negative).
    pub fn h_mut(&mut self) -> &mut [f64] {
        &mut self.h
    }

    /// Warm-starts the model at the persistence predictor: each target
    /// variable is coupled with `weight` to the same node/feature in the
    /// most recent history frame (so with `h = -1` the initial regression
    /// is `σ̂ ≈ weight · last_observation`). Gradient descent then only
    /// has to learn the *residual* spatio-temporal structure, which cuts
    /// the epochs needed by an order of magnitude.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not finite.
    pub fn init_persistence(&mut self, weight: f64) {
        assert!(weight.is_finite(), "weight must be finite");
        let layout = self.layout;
        let last = layout.history() - 1;
        for hframe in 0..layout.horizon() {
            for node in 0..layout.nodes() {
                for feat in 0..layout.features() {
                    let target = layout.index(layout.history() + hframe, node, feat);
                    let source = layout.index(last, node, feat);
                    self.coupling.set(target, source, weight);
                }
            }
        }
    }

    /// Warm-starts the model at a graph-diffusion predictor: each target
    /// variable couples to the latest history frame with `self_weight`
    /// on its own node and `neighbor_weight · Âᵢⱼ` on its graph
    /// neighbours (`Â` row-normalised by weighted degree). This gives
    /// DS-GL the same spatial-graph knowledge the GNN baselines receive
    /// as input, as a prior the trainer refines.
    ///
    /// Scaled by `|h|` like [`init_persistence`](Self::init_persistence)
    /// so the machine's fixed point realises the prior's regression
    /// weights.
    ///
    /// # Panics
    ///
    /// Panics if the graph's node count differs from the layout's, or if
    /// the weights are not finite.
    pub fn init_diffusion_prior(
        &mut self,
        graph: &dsgl_graph::CsrGraph,
        self_weight: f64,
        neighbor_weight: f64,
    ) {
        assert_eq!(
            graph.node_count(),
            self.layout.nodes(),
            "graph does not cover the layout's nodes"
        );
        assert!(
            self_weight.is_finite() && neighbor_weight.is_finite(),
            "weights must be finite"
        );
        let layout = self.layout;
        let last = layout.history() - 1;
        for hframe in 0..layout.horizon() {
            for node in 0..layout.nodes() {
                let degree: f64 = graph.neighbors(node).map(|(_, w)| w).sum();
                for feat in 0..layout.features() {
                    let target = layout.index(layout.history() + hframe, node, feat);
                    let q = -self.h[target];
                    self.coupling
                        .set(target, layout.index(last, node, feat), self_weight * q);
                    if degree > 0.0 {
                        for (j, w) in graph.neighbors(node) {
                            let source = layout.index(last, j, feat);
                            self.coupling
                                .set(target, source, neighbor_weight * w / degree * q);
                        }
                    }
                }
            }
        }
    }

    /// Teacher-forced regression prediction of one variable given the
    /// full ground-truth state: `σ̂ᵥ = Σⱼ Jᵥⱼσⱼ / (-hᵥ)` (paper Eq. 10).
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != layout.total()`.
    pub fn regress_one(&self, state: &[f64], v: usize) -> f64 {
        assert_eq!(state.len(), self.layout.total(), "state length mismatch");
        let row = self.coupling.row(v);
        let dot: f64 = row.iter().zip(state).map(|(&j, &s)| j * s).sum();
        dot / (-self.h[v])
    }

    /// Number of nonzero couplings.
    pub fn nnz(&self) -> usize {
        self.coupling.nnz()
    }

    /// Coupling density (the paper's `D` knob).
    pub fn density(&self) -> f64 {
        self.coupling.density()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_indexing() {
        let l = VariableLayout::new(3, 4, 2);
        assert_eq!(l.total(), 32);
        assert_eq!(l.history_len(), 24);
        assert_eq!(l.frame_len(), 8);
        assert_eq!(l.index(0, 0, 0), 0);
        assert_eq!(l.index(3, 0, 0), 24);
        assert_eq!(l.index(1, 2, 1), 13);
        assert!(l.is_target(24));
        assert!(!l.is_target(23));
        assert_eq!(l.target_range(), 24..32);
        assert_eq!(l.node_of(13), 2);
        assert_eq!(l.node_of(24), 0);
    }

    #[test]
    #[should_panic(expected = "frame out of range")]
    fn layout_bad_frame() {
        VariableLayout::new(2, 2, 1).index(3, 0, 0);
    }

    #[test]
    fn model_construction() {
        let l = VariableLayout::new(1, 2, 1);
        let m = DsGlModel::new(l);
        assert_eq!(m.h().len(), 4);
        assert_eq!(m.nnz(), 0);
        assert!(m.h().iter().all(|&h| h < 0.0));
    }

    #[test]
    fn from_parameters_validation() {
        let l = VariableLayout::new(1, 2, 1);
        assert!(matches!(
            DsGlModel::from_parameters(l, Coupling::zeros(3), vec![-1.0; 4]),
            Err(CoreError::SampleShapeMismatch { .. })
        ));
        assert!(matches!(
            DsGlModel::from_parameters(l, Coupling::zeros(4), vec![-1.0, -1.0, 0.0, -1.0]),
            Err(CoreError::InvalidConfig { .. })
        ));
        assert!(DsGlModel::from_parameters(l, Coupling::zeros(4), vec![-1.0; 4]).is_ok());
    }

    #[test]
    fn regression_formula() {
        let l = VariableLayout::new(1, 2, 1); // 4 variables
        let mut j = Coupling::zeros(4);
        j.set(3, 0, 0.5);
        j.set(3, 1, -0.25);
        let m = DsGlModel::from_parameters(l, j, vec![-1.0, -1.0, -1.0, -2.0]).unwrap();
        let state = [0.8, 0.4, 0.0, 0.0];
        // σ̂₃ = (0.5·0.8 - 0.25·0.4) / 2 = 0.15
        assert!((m.regress_one(&state, 3) - 0.15).abs() < 1e-12);
    }
}
