//! Property tests over the parallel training pipeline: whatever data the
//! trainer sees, the machine it produces must stay physical (symmetric
//! zero-diagonal `J`, strictly negative `h`) and its annealed state must
//! agree with the analytic fixed point of the programmed dynamics.

use dsgl_core::inference::WarmStart;
use dsgl_core::ridge::fit_ridge;
use dsgl_core::{inference, DsGlModel, GuardedAnneal, Threading, TrainConfig, Trainer, VariableLayout};
use dsgl_data::Sample;
use dsgl_ising::{AnnealConfig, EngineMode};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn random_samples(n_nodes: usize, count: usize, seed: u64, gain: f64) -> Vec<Sample> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let hist: Vec<f64> = (0..n_nodes).map(|_| rng.random::<f64>() * 0.8).collect();
            let target: Vec<f64> = hist
                .iter()
                .enumerate()
                .map(|(i, &h)| gain * h + 0.15 * hist[(i + 1) % n_nodes])
                .collect();
            Sample {
                history: hist,
                target,
            }
        })
        .collect()
}

/// `J` symmetric with a zero diagonal, `h` strictly negative.
fn assert_physical(model: &DsGlModel) -> Result<(), TestCaseError> {
    let n = model.layout().total();
    let j = model.coupling().as_slice();
    for i in 0..n {
        prop_assert_eq!(j[i * n + i], 0.0, "diagonal at {}", i);
        for k in (i + 1)..n {
            prop_assert_eq!(j[i * n + k], j[k * n + i], "asymmetry at ({}, {})", i, k);
        }
    }
    for (i, &h) in model.h().iter().enumerate() {
        prop_assert!(h < 0.0, "h[{}] = {} not strictly negative", i, h);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn trained_model_stays_physical(
        n_nodes in 3usize..7,
        seed in 0u64..1000,
        gain in 0.3f64..0.7,
    ) {
        let samples = random_samples(n_nodes, 40, seed, gain);
        let layout = VariableLayout::new(1, n_nodes, 1);
        let mut model = DsGlModel::new(layout);
        let cfg = TrainConfig { epochs: 10, ..TrainConfig::default() };
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        Trainer::new(cfg).fit(&mut model, &samples, &mut rng).unwrap();
        assert_physical(&model)?;
    }

    #[test]
    fn ridge_fitted_model_stays_physical(
        n_nodes in 3usize..8,
        seed in 0u64..1000,
    ) {
        let samples = random_samples(n_nodes, 50, seed, 0.55);
        let layout = VariableLayout::new(1, n_nodes, 1);
        let mut model = DsGlModel::new(layout);
        fit_ridge(&mut model, &samples, 1e-4).unwrap();
        assert_physical(&model)?;
    }

    #[test]
    fn annealing_reaches_the_analytic_fixed_point(
        n_nodes in 3usize..6,
        seed in 0u64..1000,
    ) {
        let samples = random_samples(n_nodes, 50, seed, 0.5);
        let layout = VariableLayout::new(1, n_nodes, 1);
        let mut model = DsGlModel::new(layout);
        fit_ridge(&mut model, &samples[..40], 1e-6).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        for sample in &samples[40..43] {
            let mut dspu = inference::machine_for_sample(&model, sample, &mut rng).unwrap();
            let analytic = dspu.analytic_fixed_point(400);
            let report = dspu.run(&AnnealConfig::default(), &mut rng);
            prop_assert!(report.converged, "annealing did not converge");
            for v in layout.target_range() {
                let (a, s) = (analytic[v], dspu.state()[v]);
                prop_assert!(
                    (a - s).abs() < 1e-2,
                    "node {}: analytic {} vs annealed {}", v, a, s
                );
            }
        }
    }

    #[test]
    fn event_driven_annealing_matches_full_integrator(
        n_nodes in 3usize..7,
        seed in 0u64..1000,
    ) {
        // Both engines run at a tight tolerance so their residual
        // distance from the shared fixed point is far inside the 1e-6
        // rail-unit agreement the predictions must show.
        let samples = random_samples(n_nodes, 50, seed, 0.5);
        let layout = VariableLayout::new(1, n_nodes, 1);
        let mut model = DsGlModel::new(layout);
        fit_ridge(&mut model, &samples[..40], 1e-6).unwrap();
        let tight = |mode| AnnealConfig {
            tolerance: 1e-9,
            max_time_ns: 20_000.0,
            mode,
            ..AnnealConfig::default()
        };
        for sample in &samples[40..43] {
            // Identical machine construction (same RNG stream) for both
            // engines: only the integration schedule differs.
            let mut strict_rng = StdRng::seed_from_u64(seed ^ 0xF00D);
            let mut strict = inference::machine_for_sample(&model, sample, &mut strict_rng).unwrap();
            let mut adaptive = strict.clone();
            let rs = strict.run(&tight(EngineMode::Strict), &mut strict_rng);
            let ra = adaptive.run(&tight(EngineMode::adaptive()), &mut strict_rng);
            prop_assert!(rs.converged && ra.converged, "an engine failed to converge");
            for v in layout.target_range() {
                let (s, a) = (strict.state()[v], adaptive.state()[v]);
                prop_assert!(
                    (s - a).abs() < 1e-6,
                    "node {}: strict {} vs event-driven {}", v, s, a
                );
            }
        }
    }

    #[test]
    fn guarded_anneal_is_transparent_on_healthy_hardware(
        n_nodes in 3usize..7,
        seed in 0u64..1000,
        threads in 1usize..5,
    ) {
        // On fault-free hardware the guard must be invisible: zero
        // retries, a clean health report, a bit-identical final state,
        // and the exact same RNG consumption as the unguarded strict
        // run — under any thread count.
        let samples = random_samples(n_nodes, 50, seed, 0.5);
        let layout = VariableLayout::new(1, n_nodes, 1);
        let mut model = DsGlModel::new(layout);
        fit_ridge(&mut model, &samples[..40], 1e-6).unwrap();
        let cfg = AnnealConfig::default();
        for sample in &samples[40..43] {
            let mut plain_rng = StdRng::seed_from_u64(seed ^ 0x6A4D);
            let mut plain = inference::machine_for_sample(&model, sample, &mut plain_rng).unwrap();
            let plain_report = plain.run(&cfg, &mut plain_rng);

            let guard = GuardedAnneal::new(cfg);
            let mut guard_rng = StdRng::seed_from_u64(seed ^ 0x6A4D);
            let mut guarded = inference::machine_for_sample(&model, sample, &mut guard_rng).unwrap();
            let (report, health) = Threading::Fixed(threads)
                .install(|| guard.run(&mut guarded, &mut guard_rng));

            prop_assert!(health.healthy(), "guard fired on healthy run: {:?}", health);
            prop_assert_eq!(health.retries, 0);
            prop_assert_eq!(report.converged, plain_report.converged);
            prop_assert_eq!(report.steps, plain_report.steps);
            let plain_bits: Vec<u64> = plain.state().iter().map(|v| v.to_bits()).collect();
            let guard_bits: Vec<u64> = guarded.state().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(guard_bits, plain_bits, "guarded state diverged");
            // Same RNG consumption: the next draw from each stream agrees.
            prop_assert_eq!(
                plain_rng.random::<u64>(),
                guard_rng.random::<u64>(),
                "guard consumed RNG on a healthy run"
            );
        }
    }

    #[test]
    fn warm_started_batch_matches_cold_start(
        n_nodes in 3usize..7,
        seed in 0u64..1000,
        chunk in 2usize..6,
    ) {
        let samples = random_samples(n_nodes, 52, seed, 0.5);
        let layout = VariableLayout::new(1, n_nodes, 1);
        let mut model = DsGlModel::new(layout);
        fit_ridge(&mut model, &samples[..40], 1e-6).unwrap();
        let cfg = AnnealConfig {
            tolerance: 1e-9,
            max_time_ns: 20_000.0,
            ..AnnealConfig::default()
        };
        let windows = &samples[40..];
        let cold = inference::infer_batch_warm(&model, windows, &cfg, seed, WarmStart::Cold).unwrap();
        let warm = inference::infer_batch_warm(
            &model, windows, &cfg, seed, WarmStart::Chained { chunk },
        ).unwrap();
        for (i, ((pc, _), (pw, rw))) in cold.iter().zip(&warm).enumerate() {
            prop_assert!(rw.converged, "warm window {} did not converge", i);
            for (c, w) in pc.iter().zip(pw) {
                prop_assert!(
                    (c - w).abs() < 1e-6,
                    "window {}: cold {} vs warm {}", i, c, w
                );
            }
        }
    }
}
