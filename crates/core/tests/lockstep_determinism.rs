//! Determinism battery for the performance toggles: SIMD micro-kernels
//! × lockstep batched annealing × threading policy must never change a
//! single forecast bit.
//!
//! The reference is the most conservative configuration — scalar
//! kernels, per-window serial integration, one thread — and every other
//! combination must reproduce its predictions, annealing reports, and
//! health reports exactly. The battery runs as a single test function
//! because the SIMD and lockstep switches are process-global.

use dsgl_core::guard::infer_batch_guarded_seeded_instrumented;
use dsgl_core::{
    inference, set_lockstep_enabled, DsGlModel, GuardedAnneal, TelemetrySink, Threading,
    TrainConfig, Trainer, VariableLayout,
};
use dsgl_data::{covid, Sample, WindowConfig};
use dsgl_ising::fault::FaultModel;
use dsgl_ising::AnnealConfig;
use rand::SeedableRng;

/// A realistically dense model (regression training couples every
/// target variable to all others), so the lockstep density gate passes
/// and the battery exercises the fused-GEMM path for real.
fn trained_model_and_windows() -> (DsGlModel, Vec<Sample>) {
    let ds = covid::generate(1);
    let wc = WindowConfig::one_step(2);
    let (train, _, test) = ds.split_windows(&wc, 0.25, 0.0);
    let layout = VariableLayout::new(2, ds.node_count(), ds.feature_count());
    let mut model = DsGlModel::new(layout);
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let cfg = TrainConfig {
        epochs: 2,
        ..TrainConfig::default()
    };
    Trainer::new(cfg)
        .fit(&mut model, &train[..24.min(train.len())], &mut rng)
        .unwrap();
    (model, test[..12.min(test.len())].to_vec())
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn forecasts_identical_across_simd_lockstep_threading() {
    let (model, windows) = trained_model_and_windows();
    assert!(windows.len() >= 4, "need a real batch");
    let config = AnnealConfig::default();
    let guard = GuardedAnneal::new(config);
    let seeds: Vec<u64> = (0..windows.len() as u64).map(|i| 0xC0FFEE ^ (i * 977)).collect();
    let sink = TelemetrySink::noop();

    // Reference: scalar kernels, serial per-window integration, one
    // thread — the configuration every release before the SIMD/lockstep
    // work shipped with.
    dsgl_nn::kernels::set_simd_enabled(false);
    set_lockstep_enabled(false);
    let reference = Threading::Sequential
        .install(|| inference::infer_batch(&model, &windows, &config, 99))
        .unwrap();
    let guarded_reference = Threading::Sequential
        .install(|| {
            infer_batch_guarded_seeded_instrumented(
                &model,
                &windows,
                &guard,
                &seeds,
                &FaultModel::none(),
                &sink,
            )
        })
        .unwrap();

    for simd in [false, true] {
        for lockstep in [false, true] {
            for threading in [Threading::Sequential, Threading::Fixed(8)] {
                dsgl_nn::kernels::set_simd_enabled(simd);
                set_lockstep_enabled(lockstep);
                let what = format!("simd={simd} lockstep={lockstep} threading={threading:?}");

                let got = threading
                    .install(|| inference::infer_batch(&model, &windows, &config, 99))
                    .unwrap();
                assert_eq!(got.len(), reference.len());
                for (w, ((p, r), (rp, rr))) in got.iter().zip(&reference).enumerate() {
                    assert_eq!(bits(p), bits(rp), "{what}: window {w} prediction bits");
                    assert_eq!(r, rr, "{what}: window {w} anneal report");
                }

                let guarded = threading
                    .install(|| {
                        infer_batch_guarded_seeded_instrumented(
                            &model,
                            &windows,
                            &guard,
                            &seeds,
                            &FaultModel::none(),
                            &sink,
                        )
                    })
                    .unwrap();
                for (w, ((p, r, h), (rp, rr, rh))) in
                    guarded.iter().zip(&guarded_reference).enumerate()
                {
                    assert_eq!(bits(p), bits(rp), "{what}: guarded window {w} bits");
                    assert_eq!(r, rr, "{what}: guarded window {w} report");
                    assert_eq!(h, rh, "{what}: guarded window {w} health");
                }
            }
        }
    }

    // Back to defaults, and prove the fast path actually engages on
    // this model rather than silently declining everywhere.
    dsgl_nn::kernels::set_simd_enabled(true);
    set_lockstep_enabled(true);
    let probe = TelemetrySink::enabled();
    let _ = inference::infer_batch_instrumented(&model, &windows, &config, 99, &probe).unwrap();
    let snap = probe.snapshot();
    assert!(
        snap.counter("anneal.lockstep_batches") >= 1,
        "lockstep must engage on a dense trained model"
    );
    assert_eq!(
        snap.counter("anneal.lockstep_windows"),
        windows.len() as u64,
        "every window should ride the lockstep batch"
    );

    let probe = TelemetrySink::enabled();
    let _ = infer_batch_guarded_seeded_instrumented(
        &model,
        &windows,
        &guard,
        &seeds,
        &FaultModel::none(),
        &probe,
    )
    .unwrap();
    let snap = probe.snapshot();
    assert!(
        snap.counter("anneal.lockstep_batches") >= 1,
        "guarded lockstep must engage too"
    );
    assert_eq!(snap.counter("guard.runs"), windows.len() as u64);
}
