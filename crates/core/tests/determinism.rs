//! Parallel/serial equivalence harness.
//!
//! Every threaded kernel in the workspace promises *bit-identical*
//! results across thread counts: the `Threading` policy may only change
//! wall-clock time, never a single bit of any fitted parameter or
//! prediction. These tests lock that contract in by fingerprinting the
//! f64 bit patterns produced under `Sequential`, one worker, and many
//! workers. CI runs them both with the `parallel` feature (default) and
//! with `--no-default-features`, which pins the serial build to the
//! same bits.

use dsgl_core::guard::GuardedAnneal;
use dsgl_core::inference::WarmStart;
use dsgl_core::ridge::{fit_ridge, refit_ridge_masked};
use dsgl_core::{
    guard, inference, DsGlModel, TelemetrySink, Threading, TrainConfig, Trainer, VariableLayout,
};
use dsgl_data::Sample;
use dsgl_ising::{AnnealConfig, Coupling, EngineMode};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const POLICIES: [Threading; 3] = [
    Threading::Sequential,
    Threading::Fixed(1),
    Threading::Fixed(8),
];

/// Windows with `frames` history frames of `n_nodes` values; the target
/// frame is a fixed linear function of the last history frame.
fn linear_samples(frames: usize, n_nodes: usize, count: usize, seed: u64) -> Vec<Sample> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let hist: Vec<f64> = (0..frames * n_nodes)
                .map(|_| rng.random::<f64>() * 0.8)
                .collect();
            let last = &hist[(frames - 1) * n_nodes..];
            let target: Vec<f64> = last
                .iter()
                .enumerate()
                .map(|(i, &h)| 0.55 * h + 0.2 * last[(i + 1) % n_nodes])
                .collect();
            Sample {
                history: hist,
                target,
            }
        })
        .collect()
}

/// Exact bit patterns of `J` and `h`.
fn fingerprint(model: &DsGlModel) -> (Vec<u64>, Vec<u64>) {
    (
        model
            .coupling()
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect(),
        model.h().iter().map(|v| v.to_bits()).collect(),
    )
}

#[test]
fn sgd_training_is_bit_identical_across_policies() {
    let samples = linear_samples(2, 6, 48, 1);
    let layout = VariableLayout::new(2, 6, 1);
    let cfg = TrainConfig {
        epochs: 8,
        ..TrainConfig::default()
    };
    let fit_under = |policy: Threading| {
        let mut model = DsGlModel::new(layout);
        let mut rng = StdRng::seed_from_u64(7);
        policy
            .install(|| Trainer::new(cfg).fit(&mut model, &samples, &mut rng))
            .unwrap();
        fingerprint(&model)
    };
    let reference = fit_under(POLICIES[0]);
    for policy in &POLICIES[1..] {
        assert_eq!(
            fit_under(*policy),
            reference,
            "training diverged under {policy:?}"
        );
    }
}

#[test]
fn ridge_fit_and_masked_refit_are_bit_identical_across_policies() {
    let samples = linear_samples(2, 8, 60, 2);
    let layout = VariableLayout::new(2, 8, 1);
    let fit_under = |policy: Threading| {
        let mut model = DsGlModel::new(layout);
        policy.install(|| {
            fit_ridge(&mut model, &samples, 1e-4).unwrap();
            model.coupling_mut().prune_to_density(0.2);
            refit_ridge_masked(&mut model, &samples, 1e-4).unwrap();
        });
        fingerprint(&model)
    };
    let reference = fit_under(POLICIES[0]);
    for policy in &POLICIES[1..] {
        assert_eq!(
            fit_under(*policy),
            reference,
            "ridge pipeline diverged under {policy:?}"
        );
    }
}

#[test]
fn batch_inference_is_bit_identical_across_policies() {
    // 50 nodes × 2 history frames: big enough that the parallel path
    // actually engages (work threshold) under Fixed(8).
    let samples = linear_samples(2, 50, 40, 3);
    let layout = VariableLayout::new(2, 50, 1);
    let mut model = DsGlModel::new(layout);
    fit_ridge(&mut model, &samples[..30], 1e-3).unwrap();
    let windows = &samples[30..];
    let cfg = AnnealConfig::default();
    let infer_under = |policy: Threading| -> Vec<u64> {
        policy
            .install(|| inference::infer_batch(&model, windows, &cfg, 99))
            .unwrap()
            .into_iter()
            .flat_map(|(pred, _)| pred.into_iter().map(|v| v.to_bits()))
            .collect()
    };
    let reference = infer_under(POLICIES[0]);
    for policy in &POLICIES[1..] {
        assert_eq!(
            infer_under(*policy),
            reference,
            "batch inference diverged under {policy:?}"
        );
    }
}

#[test]
fn warm_adaptive_batch_is_bit_identical_across_policies() {
    // The event-driven engine plus chained warm starts: chunks are
    // chained sequentially inside and parallel across, so the policy
    // still must not change a single output bit.
    let samples = linear_samples(2, 50, 40, 5);
    let layout = VariableLayout::new(2, 50, 1);
    let mut model = DsGlModel::new(layout);
    fit_ridge(&mut model, &samples[..30], 1e-3).unwrap();
    let windows = &samples[30..];
    let cfg = AnnealConfig {
        mode: EngineMode::adaptive(),
        ..AnnealConfig::default()
    };
    let warm = WarmStart::Chained { chunk: 3 };
    let infer_under = |policy: Threading| -> Vec<u64> {
        policy
            .install(|| inference::infer_batch_warm(&model, windows, &cfg, 31, warm))
            .unwrap()
            .into_iter()
            .flat_map(|(pred, _)| pred.into_iter().map(|v| v.to_bits()))
            .collect()
    };
    let reference = infer_under(POLICIES[0]);
    for policy in &POLICIES[1..] {
        assert_eq!(
            infer_under(*policy),
            reference,
            "warm adaptive batch diverged under {policy:?}"
        );
    }
}

#[test]
fn guarded_batch_matches_unguarded_across_policies() {
    // Fault-free guarded inference must be a zero-cost wrapper: every
    // prediction bit-identical to the unguarded strict batch, under
    // every threading policy, with every window's health clean.
    let samples = linear_samples(2, 50, 40, 7);
    let layout = VariableLayout::new(2, 50, 1);
    let mut model = DsGlModel::new(layout);
    fit_ridge(&mut model, &samples[..30], 1e-3).unwrap();
    let windows = &samples[30..];
    let cfg = AnnealConfig::default();
    let guard = GuardedAnneal::new(cfg);
    let unguarded: Vec<u64> = inference::infer_batch(&model, windows, &cfg, 17)
        .unwrap()
        .into_iter()
        .flat_map(|(pred, _)| pred.into_iter().map(|v| v.to_bits()))
        .collect();
    for policy in POLICIES {
        let guarded = policy
            .install(|| guard::infer_batch_guarded(&model, windows, &guard, 17))
            .unwrap();
        for (_, _, health) in &guarded {
            assert!(health.healthy(), "guard fired on healthy hardware: {health:?}");
            assert_eq!(health.retries, 0);
        }
        let bits: Vec<u64> = guarded
            .into_iter()
            .flat_map(|(pred, _, _)| pred.into_iter().map(|v| v.to_bits()))
            .collect();
        assert_eq!(
            bits, unguarded,
            "guarded batch diverged from strict under {policy:?}"
        );
    }
}

#[test]
fn large_matvec_is_bit_identical_across_policies() {
    // n = 1536 clears the 2²⁰-flop work threshold, so Fixed(8) really
    // splits rows across threads; row accumulation order is unchanged.
    let n = 1536;
    let mut rng = StdRng::seed_from_u64(4);
    let mut j = Coupling::zeros(n);
    for i in 0..n {
        for k in (i + 1)..(i + 9).min(n) {
            j.set(i, k, rng.random::<f64>() - 0.5);
        }
    }
    let s: Vec<f64> = (0..n).map(|i| ((i * 37) % 101) as f64 / 101.0 - 0.5).collect();
    let run_under = |policy: Threading| -> Vec<u64> {
        let mut out = vec![0.0; n];
        policy.install(|| j.matvec(&s, &mut out));
        out.iter().map(|v| v.to_bits()).collect()
    };
    let reference = run_under(POLICIES[0]);
    for policy in &POLICIES[1..] {
        assert_eq!(
            run_under(*policy),
            reference,
            "matvec diverged under {policy:?}"
        );
    }
}

#[test]
fn telemetry_sink_never_changes_inference_bits() {
    // An enabled telemetry sink records after the dynamics finish and
    // draws nothing from the RNG, so instrumented inference must emit
    // the same bits as the plain (noop-sink) path — under every
    // threading policy, for both the guarded and unguarded batch.
    let samples = linear_samples(2, 50, 40, 11);
    let layout = VariableLayout::new(2, 50, 1);
    let mut model = DsGlModel::new(layout);
    fit_ridge(&mut model, &samples[..30], 1e-3).unwrap();
    let windows = &samples[30..];
    let cfg = AnnealConfig::default();
    let guard = GuardedAnneal::new(cfg);

    let plain: Vec<u64> = inference::infer_batch(&model, windows, &cfg, 23)
        .unwrap()
        .into_iter()
        .flat_map(|(pred, _)| pred.into_iter().map(|v| v.to_bits()))
        .collect();
    for policy in POLICIES {
        let sink = TelemetrySink::enabled();
        let instrumented: Vec<u64> = policy
            .install(|| inference::infer_batch_instrumented(&model, windows, &cfg, 23, &sink))
            .unwrap()
            .into_iter()
            .flat_map(|(pred, _)| pred.into_iter().map(|v| v.to_bits()))
            .collect();
        assert_eq!(
            instrumented, plain,
            "enabled sink changed inference bits under {policy:?}"
        );
        let snapshot = sink.snapshot();
        assert_eq!(snapshot.counter("anneal.runs"), windows.len() as u64);

        let sink = TelemetrySink::enabled();
        let guarded: Vec<u64> = policy
            .install(|| {
                guard::infer_batch_guarded_instrumented(&model, windows, &guard, 23, &sink)
            })
            .unwrap()
            .into_iter()
            .flat_map(|(pred, _, _)| pred.into_iter().map(|v| v.to_bits()))
            .collect();
        assert_eq!(
            guarded, plain,
            "enabled sink changed guarded bits under {policy:?}"
        );
        let snapshot = sink.snapshot();
        assert_eq!(snapshot.counter("guard.runs"), windows.len() as u64);
        assert_eq!(snapshot.counter("guard.retries"), 0);
    }
}

/// 48 free targets in three blocks of 16 with strong intra-block
/// couplings, weak bridges, and a persistence coupling into the clamped
/// history frame — enough structure that the Louvain coarsener engages
/// rather than falling back to a cold start.
fn community_model(seed: u64) -> (DsGlModel, Vec<Sample>) {
    let n = 48;
    let layout = VariableLayout::new(1, n, 1);
    let mut model = DsGlModel::new(layout);
    let mut rng = StdRng::seed_from_u64(seed);
    {
        let j = model.coupling_mut();
        for b in 0..3 {
            let (lo, hi) = (b * 16, (b + 1) * 16);
            for a in lo..hi {
                for c in (a + 1)..hi {
                    if rng.random::<f64>() < 0.4 {
                        j.set(n + a, n + c, 0.2 + 0.2 * rng.random::<f64>());
                    }
                }
            }
        }
        for b in 0..2 {
            j.set(n + (b + 1) * 16 - 1, n + (b + 1) * 16, 0.05);
        }
        for i in 0..n {
            j.set(i, n + i, 0.6);
        }
    }
    let row_sums: Vec<f64> = (0..2 * n).map(|v| model.coupling().row_abs_sum(v)).collect();
    for (v, sum) in row_sums.into_iter().enumerate() {
        model.h_mut()[v] = -(1.0 + sum);
    }
    let windows: Vec<Sample> = (0..8)
        .map(|_| Sample {
            history: (0..n).map(|_| rng.random::<f64>() * 0.8 - 0.4).collect(),
            target: vec![0.0; n],
        })
        .collect();
    (model, windows)
}

#[test]
fn multigrid_batch_is_bit_identical_across_policies() {
    // The multigrid warm start promises the same contract as every
    // other kernel: coarsening, coarse solves, and prolongation are
    // all deterministic, so the threading policy may not change a bit.
    let (model, windows) = community_model(41);
    let cfg = AnnealConfig::default();
    let warm = WarmStart::Multigrid {
        levels: 2,
        coarse_tol: 1e-3,
    };
    let infer_under = |policy: Threading| -> Vec<u64> {
        policy
            .install(|| inference::infer_batch_warm(&model, &windows, &cfg, 47, warm))
            .unwrap()
            .into_iter()
            .flat_map(|(pred, _)| pred.into_iter().map(|v| v.to_bits()))
            .collect()
    };
    let reference = infer_under(POLICIES[0]);
    for policy in &POLICIES[1..] {
        assert_eq!(
            infer_under(*policy),
            reference,
            "multigrid batch diverged under {policy:?}"
        );
    }
    // Reruns under the same policy reproduce the reference exactly.
    assert_eq!(infer_under(POLICIES[0]), reference);
}

#[test]
fn guarded_multigrid_matches_unguarded_across_policies() {
    // Fault-free guarded inference with the multigrid warm start stays
    // a zero-cost wrapper under every threading policy.
    let (model, windows) = community_model(43);
    let cfg = AnnealConfig::default();
    let guard = GuardedAnneal::new(cfg);
    let warm = WarmStart::Multigrid {
        levels: 1,
        coarse_tol: 1e-3,
    };
    let plain: Vec<u64> = inference::infer_batch_warm(&model, &windows, &cfg, 53, warm)
        .unwrap()
        .into_iter()
        .flat_map(|(pred, _)| pred.into_iter().map(|v| v.to_bits()))
        .collect();
    for policy in POLICIES {
        let sink = TelemetrySink::noop();
        let guarded = policy
            .install(|| {
                guard::infer_batch_guarded_warm_instrumented(
                    &model, &windows, &guard, 53, warm, &sink,
                )
            })
            .unwrap();
        for (_, _, health) in &guarded {
            assert!(health.healthy(), "guard fired on healthy hardware: {health:?}");
            assert_eq!(health.retries, 0);
        }
        let bits: Vec<u64> = guarded
            .into_iter()
            .flat_map(|(pred, _, _)| pred.into_iter().map(|v| v.to_bits()))
            .collect();
        assert_eq!(
            bits, plain,
            "guarded multigrid diverged from unguarded under {policy:?}"
        );
    }
}
