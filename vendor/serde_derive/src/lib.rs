//! `#[derive(Serialize, Deserialize)]` for the vendored `serde`.
//!
//! Implemented directly on `proc_macro` token trees (no `syn`/`quote`
//! available offline). Supports the shapes this workspace uses:
//!
//! - structs with named fields (including `#[serde(default = "path")]`);
//! - enums whose variants are unit or struct-like (externally tagged:
//!   `"Variant"` or `{"Variant": {...}}`);
//!
//! Tuple structs, tuple variants, and generic types are rejected with a
//! compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    default_fn: Option<String>,
}

enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: Option<Vec<Field>>, // None = unit variant
}

struct Item {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Extracts `default = "path"` (or bare `default`, meaning
/// `Default::default`) from the tokens inside `#[serde(...)]`.
fn serde_default_attr(group: &proc_macro::Group) -> Option<String> {
    // Attribute content: `serde ( default )` or `serde ( default = "path" )`.
    let mut toks = group.stream().into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
        _ => return None,
    };
    let inner_toks: Vec<TokenTree> = inner.stream().into_iter().collect();
    let mut i = 0;
    while i < inner_toks.len() {
        if let TokenTree::Ident(id) = &inner_toks[i] {
            if id.to_string() == "default" {
                if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                    (inner_toks.get(i + 1), inner_toks.get(i + 2))
                {
                    if eq.as_char() == '=' {
                        let text = lit.to_string();
                        return Some(text.trim_matches('"').to_string());
                    }
                }
                // Bare `default`: the next token (if any) must close the
                // entry, and the field falls back to `Default::default`.
                match inner_toks.get(i + 1) {
                    None => return Some("::std::default::Default::default".to_string()),
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                        return Some("::std::default::Default::default".to_string())
                    }
                    _ => {}
                }
            }
        }
        i += 1;
    }
    None
}

/// Parses the fields of a brace-delimited struct body or struct variant.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut default_fn = None;
        // Attributes.
        while let TokenTree::Punct(p) = &toks[i] {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                if let Some(path) = serde_default_attr(g) {
                    default_fn = Some(path);
                }
                i += 2;
            } else {
                return Err("malformed attribute".into());
            }
        }
        // Visibility.
        if let TokenTree::Ident(id) = &toks[i] {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        // Field name and colon.
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found {other}")),
        };
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected ':' after field name, found {other}")),
        }
        // Skip the type: consume until a comma at zero angle-bracket depth.
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default_fn });
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // Attributes (e.g. `#[default]`, doc comments).
        while let TokenTree::Punct(p) = &toks[i] {
            if p.as_char() != '#' {
                break;
            }
            i += 2;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found {other}")),
        };
        i += 1;
        let mut fields = None;
        if let Some(TokenTree::Group(g)) = toks.get(i) {
            match g.delimiter() {
                Delimiter::Brace => {
                    fields = Some(parse_named_fields(g.stream())?);
                    i += 1;
                }
                Delimiter::Parenthesis => {
                    return Err(format!("tuple variant {name} is not supported"));
                }
                _ => {}
            }
        }
        // Skip to past the next comma (also skips `= discr` if present).
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Outer attributes and visibility.
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            return Err(format!("generic type {name} is not supported"));
        }
    }
    let body = match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => return Err(format!("{name}: only brace-bodied types are supported")),
    };
    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_named_fields(body)?),
        "enum" => Shape::Enum(parse_variants(body)?),
        other => return Err(format!("cannot derive for {other}")),
    };
    Ok(Item { name, shape })
}

fn gen_struct_ser(name: &str, fields: &[Field]) -> String {
    let mut pushes = String::new();
    for f in fields {
        pushes.push_str(&format!(
            "entries.push((String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})));\n",
            f.name
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Map(entries)\n\
             }}\n\
         }}\n"
    )
}

fn field_extractors(type_name: &str, fields: &[Field], source: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let missing = match &f.default_fn {
            Some(path) => format!("{path}()"),
            None => format!(
                "return Err(::serde::DeError::new(\"missing field {} in {}\"))",
                f.name, type_name
            ),
        };
        out.push_str(&format!(
            "{0}: match {source}.get(\"{0}\") {{\n\
                 Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                 None => {missing},\n\
             }},\n",
            f.name
        ));
    }
    out
}

fn gen_struct_de(name: &str, fields: &[Field]) -> String {
    let extract = field_extractors(name, fields, "v");
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 if v.as_map().is_none() {{\n\
                     return Err(::serde::DeError::new(\"expected map for {name}\"));\n\
                 }}\n\
                 Ok({name} {{\n{extract}}})\n\
             }}\n\
         }}\n"
    )
}

fn gen_enum_ser(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        match &v.fields {
            None => arms.push_str(&format!(
                "{name}::{0} => ::serde::Value::Str(String::from(\"{0}\")),\n",
                v.name
            )),
            Some(fields) => {
                let bind: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let mut pushes = String::new();
                for f in fields {
                    pushes.push_str(&format!(
                        "fields.push((String::from(\"{0}\"), ::serde::Serialize::to_value({0})));\n",
                        f.name
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{0} {{ {binds} }} => {{\n\
                         let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Map(vec![(String::from(\"{0}\"), ::serde::Value::Map(fields))])\n\
                     }}\n",
                    v.name,
                    binds = bind.join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
             }}\n\
         }}\n"
    )
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| v.fields.is_none())
        .map(|v| format!("\"{0}\" => Ok({name}::{0}),\n", v.name))
        .collect();
    let struct_variants: Vec<&Variant> =
        variants.iter().filter(|v| v.fields.is_some()).collect();

    let mut body = String::from("match v {\n");
    if !unit_arms.is_empty() {
        body.push_str(&format!(
            "::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => Err(::serde::DeError::new(format!(\"unknown variant {{other}} of {name}\"))),\n\
             }},\n"
        ));
    }
    if !struct_variants.is_empty() {
        let mut tagged_arms = String::new();
        for v in &struct_variants {
            let fields = v.fields.as_ref().unwrap();
            let extract = field_extractors(name, fields, "payload");
            tagged_arms.push_str(&format!(
                "\"{0}\" => Ok({name}::{0} {{\n{extract}}}),\n",
                v.name
            ));
        }
        body.push_str(&format!(
            "::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (key, payload) = &entries[0];\n\
                 match key.as_str() {{\n\
                     {tagged_arms}\
                     other => Err(::serde::DeError::new(format!(\"unknown variant {{other}} of {name}\"))),\n\
                 }}\n\
             }},\n"
        ));
    }
    body.push_str(&format!(
        "other => Err(::serde::DeError::new(format!(\"unexpected {{}} for {name}\", other.kind()))),\n}}"
    ));
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

/// Derives the vendored `serde::Serialize` (value-tree rendering).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match &item.shape {
        Shape::Struct(fields) => gen_struct_ser(&item.name, fields),
        Shape::Enum(variants) => gen_enum_ser(&item.name, variants),
    };
    code.parse().unwrap()
}

/// Derives the vendored `serde::Deserialize` (value-tree rebuilding).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match &item.shape {
        Shape::Struct(fields) => gen_struct_de(&item.name, fields),
        Shape::Enum(variants) => gen_enum_de(&item.name, variants),
    };
    code.parse().unwrap()
}
