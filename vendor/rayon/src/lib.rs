//! Offline, dependency-free stand-in for `rayon`.
//!
//! Fork-join data parallelism over `std::thread::scope`, exposing the
//! subset of rayon's API this workspace uses: indexed parallel iterators
//! over ranges and slices (`into_par_iter`, `par_iter`, `par_iter_mut`,
//! `par_chunks_mut`), plus `ThreadPoolBuilder::build().install(..)` for
//! scoped thread-count control.
//!
//! Work is split into at most `num_threads` *contiguous* index chunks and
//! results are concatenated in index order, so `collect()` output order
//! always matches the serial iterator. (Per-item floating-point results
//! are computed independently, so parallel `collect` is bit-identical to
//! serial `map`+`collect`; this crate never does tree reduction.)
//!
//! Thread count resolution order: `ThreadPool::install` override (if
//! inside one), else `RAYON_NUM_THREADS`, else
//! `std::thread::available_parallelism()`.

use std::cell::Cell;
use std::ops::Range;

thread_local! {
    static POOL_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn env_threads() -> Option<usize> {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Number of worker threads parallel calls will use right now.
pub fn current_num_threads() -> usize {
    POOL_OVERRIDE
        .with(Cell::get)
        .or_else(env_threads)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
        .max(1)
}

/// Error from [`ThreadPoolBuilder::build`] (never actually produced).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker thread count (`0` means "use the default").
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool. Infallible here; `Result` kept for API parity.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped thread-count configuration (threads are spawned per call, not
/// kept alive, so this is just a number).
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing all parallel
    /// calls made on the current thread inside it.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = POOL_OVERRIDE.with(|c| c.replace(self.num_threads));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        op()
    }

    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads.unwrap_or_else(current_num_threads)
    }
}

/// Splits `len` items into at most `threads` contiguous chunks and maps
/// each index with `f`, returning results in index order.
fn run_indexed<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = current_num_threads().min(len);
    if threads <= 1 {
        return (0..len).map(f).collect();
    }
    let chunk = len.div_ceil(threads);
    let mut parts: Vec<Vec<T>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = &f;
                let start = t * chunk;
                let end = ((t + 1) * chunk).min(len);
                scope.spawn(move || (start..end).map(f).collect::<Vec<T>>())
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("rayon worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(len);
    for p in parts {
        out.extend(p);
    }
    out
}

/// Runs `f(index)` for every index without collecting results.
fn run_indexed_unit<F>(len: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let threads = current_num_threads().min(len);
    if threads <= 1 {
        (0..len).for_each(f);
        return;
    }
    let chunk = len.div_ceil(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let f = &f;
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(len);
            scope.spawn(move || (start..end).for_each(f));
        }
    });
}

/// An indexed parallel producer: random access to `len` items.
///
/// All combinators bottom out in contiguous chunk splitting, so item
/// order is always preserved.
pub trait ParallelIterator: Sized + Sync {
    /// The produced item type.
    type Item: Send;

    /// Number of items.
    fn pi_len(&self) -> usize;

    /// Produces the item at `index` (must be safe to call concurrently).
    fn pi_get(&self, index: usize) -> Self::Item;

    /// Maps each item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Pairs each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Runs `f` on every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        run_indexed_unit(self.pi_len(), |i| f(self.pi_get(i)));
    }

    /// Collects all items in index order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sums all items (chunk partials added in index order).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + Send,
    {
        let items = run_indexed(self.pi_len(), |i| self.pi_get(i));
        items.into_iter().sum()
    }
}

/// Collection types buildable from a parallel iterator.
pub trait FromParallelIterator<T: Send> {
    /// Builds the collection, preserving index order.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        run_indexed(iter.pi_len(), |i| iter.pi_get(i))
    }
}

/// Map adaptor (see [`ParallelIterator::map`]).
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn pi_get(&self, index: usize) -> R {
        (self.f)(self.base.pi_get(index))
    }
}

/// Enumerate adaptor (see [`ParallelIterator::enumerate`]).
pub struct Enumerate<I> {
    base: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn pi_get(&self, index: usize) -> (usize, I::Item) {
        (index, self.base.pi_get(index))
    }
}

/// Values convertible into a parallel iterator.
pub trait IntoParallelIterator {
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The item type.
    type Item: Send;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over a `Range<usize>`.
pub struct RangeIter {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn pi_len(&self) -> usize {
        self.len
    }

    fn pi_get(&self, index: usize) -> usize {
        self.start + index
    }
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeIter;
    type Item = usize;

    fn into_par_iter(self) -> RangeIter {
        RangeIter {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

/// Parallel iterator over `&[T]`.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn pi_len(&self) -> usize {
        self.slice.len()
    }

    fn pi_get(&self, index: usize) -> &'a T {
        &self.slice[index]
    }
}

/// `par_iter` on slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over references to the elements.
    fn par_iter(&self) -> SliceIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceIter<'_, T> {
        SliceIter { slice: self }
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> SliceIter<'_, T> {
        SliceIter { slice: self }
    }
}

/// Splits `slice` into contiguous pieces of `chunk` elements and hands
/// `(piece_index, piece)` pairs to per-thread workers.
fn run_chunks_mut<T, F>(slice: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n_chunks = slice.len().div_ceil(chunk.max(1));
    let threads = current_num_threads().min(n_chunks);
    if threads <= 1 {
        for (i, piece) in slice.chunks_mut(chunk.max(1)).enumerate() {
            f(i, piece);
        }
        return;
    }
    let mut pieces: Vec<(usize, &mut [T])> = slice.chunks_mut(chunk.max(1)).enumerate().collect();
    let per_thread = pieces.len().div_ceil(threads);
    std::thread::scope(|scope| {
        while !pieces.is_empty() {
            let take = per_thread.min(pieces.len());
            let rest = pieces.split_off(take);
            let mine = std::mem::replace(&mut pieces, rest);
            let f = &f;
            scope.spawn(move || {
                for (i, piece) in mine {
                    f(i, piece);
                }
            });
        }
    });
}

/// Parallel iterator over `&mut [T]` elements.
pub struct SliceIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> SliceIterMut<'a, T> {
    /// Runs `f` on every element.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        run_chunks_mut(self.slice, 1, |_, piece| f(&mut piece[0]));
    }

    /// Pairs each element with its index.
    pub fn enumerate(self) -> EnumerateMut<'a, T> {
        EnumerateMut { slice: self.slice }
    }
}

/// Enumerated mutable element iterator.
pub struct EnumerateMut<'a, T> {
    slice: &'a mut [T],
}

impl<T: Send> EnumerateMut<'_, T> {
    /// Runs `f` on every `(index, element)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync,
    {
        run_chunks_mut(self.slice, 1, |i, piece| f((i, &mut piece[0])));
    }
}

/// Parallel iterator over contiguous mutable chunks.
pub struct ChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> ChunksMut<'a, T> {
    /// Runs `f` on every chunk.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        run_chunks_mut(self.slice, self.chunk, |_, piece| f(piece));
    }

    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut {
            slice: self.slice,
            chunk: self.chunk,
        }
    }
}

/// Enumerated mutable chunk iterator.
pub struct EnumerateChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<T: Send> EnumerateChunksMut<'_, T> {
    /// Runs `f` on every `(chunk_index, chunk)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        run_chunks_mut(self.slice, self.chunk, |i, piece| f((i, piece)));
    }
}

/// `par_iter_mut` / `par_chunks_mut` on slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable references to the elements.
    fn par_iter_mut(&mut self) -> SliceIterMut<'_, T>;
    /// Parallel iterator over contiguous mutable chunks of `chunk` items.
    fn par_chunks_mut(&mut self, chunk: usize) -> ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> SliceIterMut<'_, T> {
        SliceIterMut { slice: self }
    }

    fn par_chunks_mut(&mut self, chunk: usize) -> ChunksMut<'_, T> {
        ChunksMut { slice: self, chunk }
    }
}

impl<T: Send> ParallelSliceMut<T> for Vec<T> {
    fn par_iter_mut(&mut self) -> SliceIterMut<'_, T> {
        SliceIterMut { slice: self }
    }

    fn par_chunks_mut(&mut self, chunk: usize) -> ChunksMut<'_, T> {
        ChunksMut { slice: self, chunk }
    }
}

/// The usual glob-import module.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn range_map_collect_ordered() {
        let got: Vec<usize> = (3..11usize).into_par_iter().map(|i| i * i).collect();
        let want: Vec<usize> = (3..11usize).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn chunks_mut_writes_everywhere() {
        let mut data = vec![0u64; 103];
        data.par_chunks_mut(8).enumerate().for_each(|(ci, chunk)| {
            for (k, x) in chunk.iter_mut().enumerate() {
                *x = (ci * 8 + k) as u64;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
    }

    #[test]
    fn par_iter_mut_enumerate() {
        let mut data = vec![0.0f64; 57];
        data.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x = i as f64 * 0.5);
        assert!(data.iter().enumerate().all(|(i, &x)| x == i as f64 * 0.5));
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let f = |i: usize| ((i as f64).sin() * 1e6).cos() / (i as f64 + 1.0);
        let serial: Vec<f64> = (0..500).map(f).collect();
        let pool = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        let par: Vec<f64> = pool.install(|| (0..500usize).into_par_iter().map(f).collect());
        assert!(serial
            .iter()
            .zip(&par)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }
}
