//! Offline, dependency-free stand-in for `serde_json`.
//!
//! Serializes the vendored [`serde::Value`] tree to JSON text and parses
//! it back. Floats are written with Rust's `{:?}` formatting, which is
//! shortest-round-trip: `from_str(&to_string(&x))` always returns a value
//! bit-equal to `x` (the `float_roundtrip` feature is therefore always on
//! in effect and exists only for manifest compatibility).

use serde::{DeError, Deserialize, Serialize, Value};

/// Error returned by [`from_str`] / [`to_string`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching upstream `serde_json`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float, which JSON
/// cannot represent.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (2-space indent).
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0)?;
    Ok(out)
}

/// Parses a JSON string into `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a structural mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) -> Result<()> {
    if !f.is_finite() {
        return Err(Error::new("cannot serialize non-finite float"));
    }
    // `{:?}` is shortest-round-trip and always keeps a decimal point or
    // exponent, so the value re-parses as a float, not an integer.
    out.push_str(&format!("{f:?}"));
    Ok(())
}

fn write_value(v: &Value, out: &mut String) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out)?,
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) -> Result<()> {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_value_pretty(item, out, indent + 1)?;
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(": ");
                write_value_pretty(item, out, indent + 1)?;
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        other => write_value(other, out)?,
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape '\\{}'",
                                other as char
                            )))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte slice.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid integer '{text}'")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid integer '{text}'")))
        }
    }

    fn parse_seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn float_bits_roundtrip() {
        for &x in &[0.1, 1e-300, -2.5e17, std::f64::consts::PI, 1.0 / 3.0] {
            let s = to_string(&x).unwrap();
            let y: f64 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), y.to_bits(), "{s}");
        }
    }

    #[test]
    fn roundtrip_nested() {
        let v: Vec<Vec<f64>> = vec![vec![1.0, 2.25], vec![], vec![-0.5]];
        let s = to_string(&v).unwrap();
        let back: Vec<Vec<f64>> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_parses_back() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(7)];
        let s = to_string_pretty(&v).unwrap();
        let back: Vec<Option<u32>> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn unicode_string() {
        let s = "héllo ωorld";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
