//! Offline, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow `rand` API surface it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`], xoshiro256++ seeded via
//! SplitMix64), the [`Rng`]/[`RngExt`] extension traits with
//! `random`/`random_range`, and [`seq::SliceRandom::shuffle`].
//!
//! Streams are fully deterministic functions of the seed and are stable
//! across platforms (pure integer arithmetic, no OS entropy).

/// A source of random 64-bit words; everything else derives from this.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (high half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Marker trait used in bounds (`R: Rng + ?Sized`); every [`RngCore`] is
/// an [`Rng`].
pub trait Rng: RngCore {}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly from an RNG via [`RngExt::random`].
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough bounded integer draw: 128-bit widening multiply maps
/// 64 random bits onto `[0, span)` deterministically.
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    assert!(span > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

impl SampleRange<usize> for core::ops::Range<usize> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        self.start + bounded(rng, (self.end - self.start) as u64) as usize
    }
}

impl SampleRange<u64> for core::ops::Range<u64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        self.start + bounded(rng, self.end - self.start)
    }
}

impl SampleRange<u32> for core::ops::Range<u32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u32 {
        self.start + bounded(rng, (self.end - self.start) as u64) as u32
    }
}

impl SampleRange<i64> for core::ops::Range<i64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(bounded(rng, span) as i64)
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let u: f64 = StandardSample::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<usize> for core::ops::RangeInclusive<usize> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        let (start, end) = (*self.start(), *self.end());
        start + bounded(rng, (end - start) as u64 + 1) as usize
    }
}

/// Convenience sampling methods (`rand` 0.9+ naming: `random*`).
pub trait RngExt: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.random();
        u < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// RNGs reproducibly constructible from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the upstream `StdRng` algorithm (ChaCha12), but a
    /// high-quality, platform-stable PRNG with the same API; all
    /// reproducibility guarantees in this repository are relative to
    /// this implementation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// A small fast generator; alias of [`StdRng`]'s algorithm here.
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s.iter().all(|&w| w == 0) {
                s = [1, 2, 3, 4];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Picks one element uniformly, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }
}
