//! Offline, dependency-free stand-in for `serde`.
//!
//! Instead of upstream serde's visitor architecture, this vendored
//! version routes everything through one self-describing tree,
//! [`Value`]. [`Serialize`] renders a type into a `Value`;
//! [`Deserialize`] rebuilds the type from one. The `derive` feature
//! re-exports `#[derive(Serialize, Deserialize)]` macros (from the
//! sibling `serde_derive` crate) that generate field-by-field
//! conversions, including `#[serde(default = "path")]` support.
//!
//! `serde_json` (also vendored) maps `Value` to and from JSON text with
//! shortest-round-trip float formatting, so every `to_string` →
//! `from_str` cycle is value-exact.

pub mod value;

pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Error produced when a [`Value`] cannot be rebuilt into a type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types renderable into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] on a structural or type mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self < 0 {
                    Value::Int(*self as i64)
                } else {
                    Value::UInt(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::Int(i) => <$t>::try_from(i)
                        .map_err(|_| DeError::new(format!("{i} out of range"))),
                    Value::UInt(u) => <$t>::try_from(u)
                        .map_err(|_| DeError::new(format!("{u} out of range"))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(f as $t),
                    ref other => Err(DeError::new(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::UInt(u) => <$t>::try_from(u)
                        .map_err(|_| DeError::new(format!("{u} out of range"))),
                    Value::Int(i) if i >= 0 => <$t>::try_from(i as u64)
                        .map_err(|_| DeError::new(format!("{i} out of range"))),
                    Value::Float(f) if f.fract() == 0.0 && f >= 0.0 => Ok(f as $t),
                    ref other => Err(DeError::new(format!(
                        "expected unsigned integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Float(f) => Ok(f),
            Value::Int(i) => Ok(i as f64),
            Value::UInt(u) => Ok(u as f64),
            ref other => Err(DeError::new(format!("expected float, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => Err(DeError::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Rebuilds a `&'static str` by leaking the parsed string.
    ///
    /// Upstream serde borrows from the input for `&str`; this value-tree
    /// model has no input to borrow from, so the bytes are leaked
    /// instead. Acceptable here because only test-suite round-trips of
    /// constant-labeled types exercise this impl.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::new(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected sequence, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::new(format!("expected 2-tuple, found {}", other.kind()))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(DeError::new(format!("expected 3-tuple, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize + Eq + std::hash::Hash> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected sequence, found {}", other.kind()))),
        }
    }
}

impl<K, V> Serialize for std::collections::BTreeMap<K, V>
where
    K: std::fmt::Display,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}
