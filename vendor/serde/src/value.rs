//! The self-describing value tree shared by `serde` and `serde_json`.

/// A dynamically typed serialized value.
///
/// Maps preserve insertion order (a `Vec` of pairs, not a hash map), so
/// derived serialization emits fields in declaration order and output is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A negative integer.
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    /// The entries of a [`Value::Map`], or `None`.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The string payload of a [`Value::Str`], or `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up `key` in a [`Value::Map`] (linear scan; maps are small).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}
