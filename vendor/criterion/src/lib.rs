//! Offline, dependency-free stand-in for `criterion`.
//!
//! Wall-clock micro-benchmarking with the same call shapes this
//! workspace's benches use (`bench_function`, `benchmark_group` /
//! `bench_with_input`, `criterion_group!` / `criterion_main!`). Each
//! benchmark calibrates an iteration count, takes `sample_size` timed
//! samples, and prints the median ns/iter to stdout. No statistics
//! beyond min/median/max, no plots, no baseline storage.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Collects timing samples for one benchmark.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `f`, calibrating an inner iteration count so each sample
    /// runs long enough for the clock to resolve.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and calibration.
        black_box(f());
        let t0 = Instant::now();
        black_box(f());
        let once_ns = t0.elapsed().as_nanos().max(1);
        // Aim for ~2 ms per sample, capped to keep total time bounded.
        let iters = ((2_000_000 / once_ns) as usize).clamp(1, 100_000);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples
                .push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
    }
}

fn report(name: &str, samples: &mut [f64]) {
    if samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!("{name:<50} time: [{min:>12.1} ns {median:>12.1} ns {max:>12.1} ns]");
}

/// Identifies a benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        let mut b = Bencher {
            sample_size: self.criterion.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(&full, &mut b.samples);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finishes the group (separator line only).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(name, &mut b.samples);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }
}

/// Defines a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut c = $config;
                    $target(&mut c);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Defines `main` running the listed groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }
}
