//! Offline, dependency-free stand-in for `proptest`.
//!
//! Provides the subset this workspace's property tests use: range and
//! `collection::vec` strategies, `prop_map`, the `proptest!` macro with
//! `#![proptest_config(..)]`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream: inputs are generated from a deterministic
//! per-test RNG (seeded from the test's name, so runs are reproducible)
//! and failing cases are reported but **not shrunk**.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generates one value.
        fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<R, F>(self, f: F) -> PropMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> R,
        {
            PropMap { base: self, f }
        }
    }

    /// Map adaptor (see [`Strategy::prop_map`]).
    pub struct PropMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, R, F> Strategy for PropMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> R,
    {
        type Value = R;

        fn gen_value(&self, rng: &mut StdRng) -> R {
            (self.f)(self.base.gen_value(rng))
        }
    }

    /// A strategy that always yields a clone of its payload.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn gen_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, i64, f64);

    impl Strategy for std::ops::RangeInclusive<usize> {
        type Value = usize;

        fn gen_value(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl Strategy for std::ops::Range<i32> {
        type Value = i32;

        fn gen_value(&self, rng: &mut StdRng) -> i32 {
            rng.random_range(self.start as i64..self.end as i64) as i32
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;

    /// A strategy yielding `Vec`s of exactly `len` elements.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Builds a [`VecStrategy`] of `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-run configuration for [`proptest!`](crate::proptest) blocks.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property assertion (carried as an error so the harness
    /// can report the failing case index).
    #[derive(Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Deterministic RNG derived from the test's name (FNV-1a hash).
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Runs each contained `fn name(pat in strategy, ..) { .. }` as a
/// `#[test]` over `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!("case {}/{} failed: {}", __case + 1, __config.cases, e);
                }
            }
        }
        $crate::__proptest_fns!{ ($config) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                $($fmt)+
            )));
        }
    }};
}

pub mod prelude {
    //! The usual glob-import module.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_respect_bounds(x in 0usize..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y), "y = {y}");
        }

        #[test]
        fn vec_has_requested_len(v in crate::collection::vec(0u64..100, 7)) {
            prop_assert_eq!(v.len(), 7);
        }

        #[test]
        fn prop_map_applies(s in (0usize..5).prop_map(|k| k * 2)) {
            prop_assert!(s % 2 == 0 && s < 10);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::rng_for("x");
        let mut b = crate::test_runner::rng_for("x");
        let s = 0.0f64..1.0;
        for _ in 0..8 {
            assert_eq!(
                s.gen_value(&mut a).to_bits(),
                s.gen_value(&mut b).to_bits()
            );
        }
    }
}
