//! DS-GL: nature-powered graph learning on scalable dynamical systems.
//!
//! Umbrella crate re-exporting the whole workspace. See the README for a
//! tour and `DESIGN.md` for the system inventory.
//!
//! - [`ising`] — the dynamical-system substrate (BRIM, Real-Valued DSPU);
//! - [`graph`] — CSR graphs, Louvain, PE-grid partitioning;
//! - [`data`] — the synthetic spatio-temporal evaluation datasets;
//! - [`core`] — the DS-GL model, training, sparsification, inference;
//! - [`hw`] — the Scalable DSPU architecture, co-annealing, cost models;
//! - [`serve`] — the long-lived concurrent forecast service;
//! - [`nn`] — the minimal neural-network substrate;
//! - [`baselines`] — the GWN / MTGNN / DDGCRN baseline analogues.

#![forbid(unsafe_code)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![warn(missing_docs)]

pub mod facade;

pub use dsgl_baselines as baselines;
pub use dsgl_core as core;
pub use dsgl_data as data;
pub use dsgl_graph as graph;
pub use dsgl_hw as hw;
pub use dsgl_ising as ising;
pub use dsgl_nn as nn;
pub use dsgl_serve as serve;
