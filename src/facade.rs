//! High-level facade: train, forecast, impute, deploy, and serve a
//! DS-GL system without orchestrating the individual crates.
//!
//! The builder idioms from the guarded-inference and telemetry PRs are
//! the recommended defaults: attach an enabled
//! [`TelemetrySink`](dsgl_core::TelemetrySink) so training and every
//! inference record into one registry, and set a
//! [`RetryPolicy`](dsgl_core::RetryPolicy) so the health-reporting
//! paths say how hard the guard may fight a bad anneal. Neither knob
//! can change forecast bits.
//!
//! ```
//! use dsgl::core::{RetryPolicy, TelemetrySink};
//! use dsgl::facade::Forecaster;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), dsgl::core::CoreError> {
//! let dataset = dsgl::data::covid::generate(7).truncate(16, 160);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let forecaster = Forecaster::builder()
//!     .history(3)
//!     .guard(RetryPolicy { max_retries: 3, backoff: 2.0 })
//!     .telemetry(TelemetrySink::enabled())
//!     .fit(&dataset, &mut rng)?;
//! let window = dataset.series.frame(0).to_vec(); // toy: any W frames
//! # let mut window = Vec::new();
//! # for t in 0..3 { window.extend_from_slice(dataset.series.frame(t)); }
//! let (forecast, health) = forecaster.forecast_with_health(&window, &mut rng)?;
//! assert_eq!(forecast.len(), dataset.node_count());
//! assert!(health.healthy());
//! // Everything recorded so far: train.*, anneal.*, guard.*.
//! let snapshot = forecaster.telemetry_snapshot();
//! assert!(snapshot.counter("guard.runs") >= 1);
//! # Ok(())
//! # }
//! ```
//!
//! For long-lived serving — a pool of workers coalescing concurrent
//! requests over the trained model — hand the forecaster to
//! [`Forecaster::serve`]:
//!
//! ```
//! use dsgl::core::TelemetrySink;
//! use dsgl::facade::Forecaster;
//! use dsgl::serve::ServeConfig;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dataset = dsgl::data::covid::generate(7).truncate(16, 160);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let forecaster = Forecaster::builder()
//!     .history(3)
//!     .telemetry(TelemetrySink::enabled())
//!     .fit(&dataset, &mut rng)?;
//! let mut service = forecaster.serve(ServeConfig::default().workers(2))?;
//! let mut window = Vec::new();
//! for t in 0..3 { window.extend_from_slice(dataset.series.frame(t)); }
//! let response = service.forecast(window, 7)?;
//! assert_eq!(response.prediction.len(), dataset.node_count());
//! service.shutdown();
//! # Ok(())
//! # }
//! ```

use dsgl_core::guard::{
    infer_batch_guarded_warm_instrumented, infer_dense_guarded_faulted_instrumented,
};
use dsgl_core::inference::{
    infer_batch_warm_instrumented, infer_dense_imputation, infer_dense_instrumented, WarmStart,
};
use dsgl_core::ridge::{
    fit_gaussian_couplings, fit_ridge_instrumented, fit_ridge_validated_instrumented,
};
use dsgl_core::{
    decompose, CoreError, DecomposeConfig, DecomposedModel, DsGlModel, GuardedAnneal,
    HealthReport, MetricsSnapshot, PatternKind, RetryPolicy, TelemetrySink, VariableLayout,
};
use dsgl_data::{Dataset, Sample, WindowConfig};
use dsgl_hw::coanneal::MappedMachine;
use dsgl_hw::{HwConfig, HwFaultModel};
use dsgl_ising::fault::FaultModel;
use dsgl_ising::AnnealConfig;
use rand::Rng;

/// Configures and fits a [`Forecaster`].
#[derive(Debug, Clone)]
pub struct ForecasterBuilder {
    history: usize,
    horizon: usize,
    h_magnitude: f64,
    lambda_grid: Vec<f64>,
    gaussian_outputs: bool,
    anneal: AnnealConfig,
    warm_start: WarmStart,
    retry: RetryPolicy,
    telemetry: TelemetrySink,
}

impl ForecasterBuilder {
    /// Number of observed history frames `W` (default 4).
    pub fn history(mut self, w: usize) -> Self {
        self.history = w;
        self
    }

    /// Number of jointly predicted future frames `H` (default 1).
    pub fn horizon(mut self, h: usize) -> Self {
        self.horizon = h;
        self
    }

    /// Ridge-λ candidates validated on a held-out tail.
    pub fn lambda_grid(mut self, grid: Vec<f64>) -> Self {
        self.lambda_grid = grid;
        self
    }

    /// Also program the residual Gaussian graphical model over the
    /// outputs (recommended when [`Forecaster::impute`] will be used).
    pub fn gaussian_outputs(mut self, on: bool) -> Self {
        self.gaussian_outputs = on;
        self
    }

    /// The annealing configuration used at inference.
    pub fn anneal(mut self, config: AnnealConfig) -> Self {
        self.anneal = config;
        self
    }

    /// How [`Forecaster::forecast_batch`] seeds consecutive windows
    /// (default [`WarmStart::Cold`] — independent windows, the bit-exact
    /// historical behaviour). [`WarmStart::Chained`] starts each window
    /// from the previous window's equilibrium, collapsing
    /// steps-to-converge on autocorrelated series.
    pub fn warm_start(mut self, warm: WarmStart) -> Self {
        self.warm_start = warm;
        self
    }

    /// Convenience for
    /// [`warm_start`](ForecasterBuilder::warm_start)`(WarmStart::Multigrid {..})`:
    /// every window anneals from a Louvain-coarsened coarse solve
    /// prolonged onto the fine machine (see [`dsgl_ising::multigrid`]).
    /// Windows stay independent — the multigrid policy composes with
    /// batching, guarding and serving without changing a bit — and
    /// large community-structured graphs converge in a fraction of the
    /// cold-start steps. `levels` caps the coarsening depth (`0` acts
    /// as `1`); `coarse_tol` is the coarse-solve tolerance, typically
    /// much looser than the fine one (e.g. `1e-3`).
    pub fn multigrid(self, levels: usize, coarse_tol: f64) -> Self {
        self.warm_start(WarmStart::Multigrid { levels, coarse_tol })
    }

    /// Retry policy for the guarded inference paths
    /// ([`Forecaster::forecast_with_health`] and
    /// [`Forecaster::forecast_batch_with_health`]); the default allows
    /// three retries with a 2× budget backoff. The unguarded paths are
    /// unaffected.
    pub fn guard(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Attaches a [`TelemetrySink`]: training records the `train.*`
    /// instrument family and every subsequent inference through the
    /// fitted [`Forecaster`] records `anneal.*` / `guard.*` (and `hw.*`
    /// after [`Forecaster::deploy`]). The default noop sink costs
    /// nothing; an enabled sink never touches the RNG or the dynamics,
    /// so results are bit-identical either way. Read the aggregate with
    /// [`Forecaster::telemetry_snapshot`].
    pub fn telemetry(mut self, sink: TelemetrySink) -> Self {
        self.telemetry = sink;
        self
    }

    /// Windows the dataset, fits the dynamical system (persistence +
    /// graph-diffusion prior, validated closed-form ridge), and returns
    /// a ready [`Forecaster`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] variants for empty/degenerate data.
    pub fn fit<R: Rng + ?Sized>(
        self,
        dataset: &Dataset,
        rng: &mut R,
    ) -> Result<Forecaster, CoreError> {
        let _ = rng; // reserved for stochastic trainers
        let wc = WindowConfig {
            history: self.history,
            horizon: self.horizon,
        };
        let (train, val, _) = dataset.split_windows(&wc, 0.85, 0.15);
        if train.is_empty() || val.is_empty() {
            return Err(CoreError::EmptyTrainingSet);
        }
        let layout = VariableLayout::with_horizon(
            self.history,
            dataset.node_count(),
            dataset.feature_count(),
            self.horizon,
        );
        let mut model = DsGlModel::new(layout);
        model.h_mut().iter_mut().for_each(|h| *h = -self.h_magnitude);
        model.init_diffusion_prior(&dataset.graph, 0.7, 0.2);
        let lambda = fit_ridge_validated_instrumented(
            &mut model,
            &train,
            &val,
            &self.lambda_grid,
            &self.telemetry,
        )?;
        // Final fit on everything that was windowed.
        let mut all = train;
        all.extend(val);
        fit_ridge_instrumented(&mut model, &all, lambda, &self.telemetry)?;
        let joint = if self.gaussian_outputs {
            let mut j = model.clone();
            fit_gaussian_couplings(&mut j, &all, 0.5, self.h_magnitude)?;
            Some(j)
        } else {
            None
        };
        Ok(Forecaster {
            model,
            joint,
            anneal: self.anneal,
            warm_start: self.warm_start,
            guard: GuardedAnneal::new(self.anneal).with_policy(self.retry),
            telemetry: self.telemetry,
        })
    }
}

/// A trained DS-GL system with a one-call inference API.
///
/// Holds the per-node forecaster and, when
/// [`gaussian_outputs`](ForecasterBuilder::gaussian_outputs) was set, a
/// second Gaussian-programmed model whose output couplings power
/// [`impute`](Self::impute). Forecasting and deployment use the
/// forecaster model (output couplings are provably inert for pure
/// forecasting and do not survive decomposition well — see DESIGN.md).
#[derive(Debug, Clone)]
pub struct Forecaster {
    model: DsGlModel,
    joint: Option<DsGlModel>,
    anneal: AnnealConfig,
    warm_start: WarmStart,
    guard: GuardedAnneal,
    telemetry: TelemetrySink,
}

impl Forecaster {
    /// Starts configuring a forecaster.
    pub fn builder() -> ForecasterBuilder {
        ForecasterBuilder {
            history: 4,
            horizon: 1,
            h_magnitude: 2.0,
            lambda_grid: vec![0.1, 1.0, 10.0, 100.0],
            gaussian_outputs: false,
            anneal: AnnealConfig::default(),
            warm_start: WarmStart::Cold,
            retry: RetryPolicy::default(),
            telemetry: TelemetrySink::noop(),
        }
    }

    /// The underlying model (for decomposition, serialisation, …).
    pub fn model(&self) -> &DsGlModel {
        &self.model
    }

    /// The telemetry sink every inference records into (noop unless
    /// [`ForecasterBuilder::telemetry`] attached an enabled one).
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.telemetry
    }

    /// A point-in-time snapshot of every instrument recorded so far
    /// (training, forecasting, guarded inference; empty for a noop
    /// sink). Serialise it with serde or render
    /// [`MetricsSnapshot::summary_table`].
    pub fn telemetry_snapshot(&self) -> MetricsSnapshot {
        self.telemetry.snapshot()
    }

    /// Forecasts the next `horizon` frames from `W·N·F` history values
    /// (frames oldest→newest, node-major) by natural annealing.
    ///
    /// # Errors
    ///
    /// Returns a shape mismatch if `history` has the wrong length.
    pub fn forecast<R: Rng + ?Sized>(
        &self,
        history: &[f64],
        rng: &mut R,
    ) -> Result<Vec<f64>, CoreError> {
        let sample = Sample {
            history: history.to_vec(),
            target: vec![0.0; self.model.layout().target_len()],
        };
        let (pred, _) =
            infer_dense_instrumented(&self.model, &sample, &self.anneal, &self.telemetry, rng)?;
        Ok(pred)
    }

    /// [`forecast`](Self::forecast) under the guarded annealing path:
    /// bad runs (non-finite state, rail saturation, non-convergence)
    /// are retried with escalating mitigation per the builder's
    /// [`guard`](ForecasterBuilder::guard) policy, and the returned
    /// [`HealthReport`] says what happened. The prediction is always
    /// finite; on a healthy run it is bit-identical to
    /// [`forecast`](Self::forecast).
    ///
    /// # Errors
    ///
    /// Returns a shape mismatch if `history` has the wrong length.
    pub fn forecast_with_health<R: Rng + ?Sized>(
        &self,
        history: &[f64],
        rng: &mut R,
    ) -> Result<(Vec<f64>, HealthReport), CoreError> {
        let sample = Sample {
            history: history.to_vec(),
            target: vec![0.0; self.model.layout().target_len()],
        };
        let (pred, _, health) = infer_dense_guarded_faulted_instrumented(
            &self.model,
            &sample,
            &self.guard,
            &FaultModel::none(),
            &self.telemetry,
            rng,
        )?;
        Ok((pred, health))
    }

    /// Forecasts many history windows at once, annealing them in
    /// parallel when the `parallel` feature is enabled.
    ///
    /// Each window gets its own RNG seeded deterministically from
    /// `master_seed` and its index, so the output is reproducible and
    /// bit-identical across thread counts (see
    /// [`dsgl_core::inference::infer_batch`]). Predictions are returned
    /// in window order. With
    /// [`warm_start`](ForecasterBuilder::warm_start) set to
    /// [`WarmStart::Chained`], consecutive windows seed each other's
    /// equilibria (still deterministic for a fixed policy).
    ///
    /// # Errors
    ///
    /// Returns an error for an empty batch or the first window with a
    /// wrong history length.
    pub fn forecast_batch(
        &self,
        windows: &[Vec<f64>],
        master_seed: u64,
    ) -> Result<Vec<Vec<f64>>, CoreError> {
        let target_len = self.model.layout().target_len();
        let samples: Vec<Sample> = windows
            .iter()
            .map(|history| Sample {
                history: history.clone(),
                target: vec![0.0; target_len],
            })
            .collect();
        let results = infer_batch_warm_instrumented(
            &self.model,
            &samples,
            &self.anneal,
            master_seed,
            self.warm_start,
            &self.telemetry,
        )?;
        Ok(results.into_iter().map(|(pred, _)| pred).collect())
    }

    /// [`forecast_batch`](Self::forecast_batch) under the guarded
    /// annealing path: every window gets its own guard with the
    /// builder's retry policy and reports its health alongside the
    /// prediction. Windows whose guard never fires are bit-identical to
    /// the unguarded cold-start batch under every threading policy.
    /// A [`WarmStart::Multigrid`] policy carries over (each window
    /// warm-starts independently before its guard runs);
    /// [`WarmStart::Chained`] does not — the guarded batch silently
    /// cold-starts instead, since warm chaining would let one window's
    /// degraded equilibrium seed the next.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty batch or a window with a wrong
    /// history length.
    pub fn forecast_batch_with_health(
        &self,
        windows: &[Vec<f64>],
        master_seed: u64,
    ) -> Result<Vec<(Vec<f64>, HealthReport)>, CoreError> {
        let target_len = self.model.layout().target_len();
        let samples: Vec<Sample> = windows
            .iter()
            .map(|history| Sample {
                history: history.clone(),
                target: vec![0.0; target_len],
            })
            .collect();
        let warm = match self.warm_start {
            WarmStart::Multigrid { levels, coarse_tol } => {
                WarmStart::Multigrid { levels, coarse_tol }
            }
            _ => WarmStart::Cold,
        };
        let results = infer_batch_guarded_warm_instrumented(
            &self.model,
            &samples,
            &self.guard,
            master_seed,
            warm,
            &self.telemetry,
        )?;
        Ok(results
            .into_iter()
            .map(|(pred, _, health)| (pred, health))
            .collect())
    }

    /// Imputes the unknown entries of a partially observed target frame:
    /// `observed` lists `(target_index, value)` pairs; everything else
    /// anneals. Returns the full target block.
    ///
    /// # Errors
    ///
    /// Returns shape mismatches and out-of-range indices.
    pub fn impute<R: Rng + ?Sized>(
        &self,
        history: &[f64],
        observed: &[(usize, f64)],
        rng: &mut R,
    ) -> Result<Vec<f64>, CoreError> {
        let mut target = vec![0.0; self.model.layout().target_len()];
        for &(idx, value) in observed {
            if idx >= target.len() {
                return Err(CoreError::SampleShapeMismatch {
                    what: "observed target index",
                    expected: target.len(),
                    actual: idx,
                });
            }
            target[idx] = value;
        }
        let sample = Sample {
            history: history.to_vec(),
            target,
        };
        let indices: Vec<usize> = observed.iter().map(|&(i, _)| i).collect();
        let machine = self.joint.as_ref().unwrap_or(&self.model);
        let (pred, _) = infer_dense_imputation(machine, &sample, &indices, &self.anneal, rng)?;
        Ok(pred)
    }

    /// Spawns a long-lived [`ForecastService`](dsgl_serve::ForecastService)
    /// over this forecaster's model: a pool of workers pulling
    /// concurrent requests off a bounded queue, coalescing compatible
    /// windows into single batched anneals with pooled workspaces, and
    /// answering with the same bits a serial one-by-one run would
    /// produce. The service inherits this forecaster's guard policy and
    /// telemetry sink, so `serve.*` instruments land in the registry
    /// [`telemetry_snapshot`](Self::telemetry_snapshot) reads.
    ///
    /// # Errors
    ///
    /// Returns [`dsgl_serve::ServeError::InvalidConfig`] for an
    /// unrunnable configuration.
    pub fn serve(
        &self,
        config: dsgl_serve::ServeConfig,
    ) -> Result<dsgl_serve::ForecastService, dsgl_serve::ServeError> {
        dsgl_serve::ForecastService::spawn(
            self.model.clone(),
            self.guard,
            self.telemetry.clone(),
            config,
        )
    }

    /// Decomposes the system onto a PE mesh and returns a
    /// [`MappedForecaster`] running on the simulated hardware.
    ///
    /// # Errors
    ///
    /// Returns decomposition errors (e.g. a grid too small).
    pub fn deploy<R: Rng + ?Sized>(
        &self,
        grid: (usize, usize),
        pattern: PatternKind,
        density: f64,
        finetune_samples: &[Sample],
        rng: &mut R,
    ) -> Result<MappedForecaster, CoreError> {
        let total = self.model.layout().total();
        let pes = grid.0 * grid.1;
        let cfg = DecomposeConfig {
            density,
            pattern,
            wormhole_budget: 4,
            pe_capacity: total.div_ceil(pes) + 2,
            grid,
            finetune: None, // closed-form masked refit below instead
        };
        let mut decomposed = decompose(&self.model, finetune_samples, &cfg, rng)?;
        if !finetune_samples.is_empty() {
            dsgl_core::ridge::refit_ridge_masked(&mut decomposed.model, finetune_samples, 10.0)?;
        }
        // Historical per-index target means: the fallback values a
        // faulted deployment degrades to (0 V when no samples exist).
        let target_len = self.model.layout().target_len();
        let mut fallback = vec![0.0; target_len];
        if !finetune_samples.is_empty() {
            for s in finetune_samples {
                for (acc, &t) in fallback.iter_mut().zip(&s.target) {
                    *acc += t;
                }
            }
            let inv = 1.0 / finetune_samples.len() as f64;
            fallback.iter_mut().for_each(|v| *v *= inv);
        }
        Ok(MappedForecaster {
            decomposed,
            hw: HwConfig::default(),
            faults: HwFaultModel::none(),
            fallback,
            telemetry: self.telemetry.clone(),
        })
    }
}

/// A forecaster deployed onto the simulated Scalable DSPU mesh.
#[derive(Debug, Clone)]
pub struct MappedForecaster {
    decomposed: DecomposedModel,
    hw: HwConfig,
    faults: HwFaultModel,
    fallback: Vec<f64>,
    /// Inherited from the [`Forecaster`] at deploy time: mapped runs
    /// record the `hw.*` instrument family into the same registry.
    telemetry: TelemetrySink,
}

impl MappedForecaster {
    /// The decomposed model (placement, wormholes, stats).
    pub fn decomposed(&self) -> &DecomposedModel {
        &self.decomposed
    }

    /// Overrides the hardware configuration (lanes, sync interval, …).
    pub fn with_hw(mut self, hw: HwConfig) -> Self {
        self.hw = hw;
        self
    }

    /// Declares dead PEs and CU lanes on the deployed mesh. Subsequent
    /// [`forecast_with_health`](Self::forecast_with_health) calls run
    /// around the defects: couplings through dead lanes are severed,
    /// and predictions read off dead PEs are degraded to the historical
    /// target means captured at [`Forecaster::deploy`].
    pub fn with_faults(mut self, faults: HwFaultModel) -> Self {
        self.faults = faults;
        self
    }

    /// Replaces the telemetry sink inherited from the [`Forecaster`].
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        self.telemetry = sink;
        self
    }

    /// The telemetry sink mapped runs record into.
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.telemetry
    }

    /// Forecasts by co-annealing on the mesh; also returns the inference
    /// latency in nanoseconds of simulated analog time.
    ///
    /// # Errors
    ///
    /// Returns shape mismatches.
    pub fn forecast<R: Rng + ?Sized>(
        &self,
        history: &[f64],
        rng: &mut R,
    ) -> Result<(Vec<f64>, f64), CoreError> {
        let sample = Sample {
            history: history.to_vec(),
            target: vec![0.0; self.decomposed.model.layout().target_len()],
        };
        let mut machine = MappedMachine::new(&self.decomposed, self.hw.lanes)?;
        machine.set_telemetry(self.telemetry.clone());
        machine.load_sample(&sample, rng)?;
        let report = machine.run(&self.hw, rng);
        Ok((machine.prediction(), report.anneal.sim_time_ns))
    }

    /// Forecasts on the (possibly faulted) mesh with a health account.
    /// Target entries whose variable sits on a dead PE are re-clamped
    /// to the historical-mean fallback captured at deploy time, as are
    /// any non-finite readouts; each patch is counted in the
    /// [`HealthReport`] and marks the result degraded. A defect-free
    /// mesh returns the same bits as [`forecast`](Self::forecast) with
    /// a clean report.
    ///
    /// # Errors
    ///
    /// Returns shape mismatches and invalid fault declarations (a dead
    /// PE outside the grid).
    pub fn forecast_with_health<R: Rng + ?Sized>(
        &self,
        history: &[f64],
        rng: &mut R,
    ) -> Result<(Vec<f64>, f64, HealthReport), CoreError> {
        let sample = Sample {
            history: history.to_vec(),
            target: vec![0.0; self.decomposed.model.layout().target_len()],
        };
        let mut machine = MappedMachine::with_faults(&self.decomposed, self.hw.lanes, &self.faults)?;
        machine.set_telemetry(self.telemetry.clone());
        machine.load_sample(&sample, rng)?;
        let report = machine.run(&self.hw, rng);
        let mut pred = machine.prediction();
        let mut health = HealthReport {
            anneal_steps: report.anneal.steps,
            anneal_sim_time_ns: report.anneal.sim_time_ns,
            ..HealthReport::default()
        };
        for idx in machine.faulted_target_indices() {
            pred[idx] = self.fallback[idx];
            health.fault_clamped += 1;
        }
        for (p, &fb) in pred.iter_mut().zip(&self.fallback) {
            if !p.is_finite() {
                *p = fb;
                health.sanitized_nodes += 1;
            }
        }
        health.degraded = health.fault_clamped > 0 || health.sanitized_nodes > 0;
        if self.telemetry.is_enabled() {
            self.telemetry.counter_add("guard.runs", 1);
            self.telemetry.counter_add("guard.attempts", 1);
            if health.degraded {
                self.telemetry.counter_add("guard.degraded_runs", 1);
            }
            self.telemetry
                .counter_add("guard.fault_clamped", health.fault_clamped as u64);
            self.telemetry
                .counter_add("guard.sanitized_nodes", health.sanitized_nodes as u64);
        }
        Ok((pred, report.anneal.sim_time_ns, health))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn history_of(dataset: &Dataset, start: usize, w: usize) -> Vec<f64> {
        let mut h = Vec::new();
        for t in start..start + w {
            h.extend_from_slice(dataset.series.frame(t));
        }
        h
    }

    #[test]
    fn fit_forecast_roundtrip() {
        let dataset = dsgl_data::covid::generate(9).truncate(16, 160);
        let mut rng = StdRng::seed_from_u64(0);
        let f = Forecaster::builder()
            .history(3)
            .fit(&dataset, &mut rng)
            .unwrap();
        let t0 = 100;
        let hist = history_of(&dataset, t0, 3);
        let pred = f.forecast(&hist, &mut rng).unwrap();
        let truth = dataset.series.frame(t0 + 3);
        let rmse = dsgl_core::metrics::rmse(&pred, truth);
        assert!(rmse < 0.05, "facade forecast rmse {rmse}");
    }

    #[test]
    fn batch_forecast_matches_truth_and_is_reproducible() {
        let dataset = dsgl_data::covid::generate(9).truncate(16, 160);
        let mut rng = StdRng::seed_from_u64(0);
        let f = Forecaster::builder()
            .history(3)
            .fit(&dataset, &mut rng)
            .unwrap();
        let windows: Vec<Vec<f64>> = (100..108).map(|t| history_of(&dataset, t, 3)).collect();
        let preds = f.forecast_batch(&windows, 7).unwrap();
        assert_eq!(preds.len(), windows.len());
        for (k, pred) in preds.iter().enumerate() {
            let truth = dataset.series.frame(100 + k + 3);
            let rmse = dsgl_core::metrics::rmse(pred, truth);
            assert!(rmse < 0.05, "window {k} rmse {rmse}");
        }
        // Same master seed → bit-identical reruns.
        let again = f.forecast_batch(&windows, 7).unwrap();
        assert_eq!(preds, again);
        assert!(f.forecast_batch(&[], 7).is_err(), "empty batch rejected");
    }

    #[test]
    fn warm_adaptive_batch_forecast_close_to_cold_strict() {
        let dataset = dsgl_data::covid::generate(9).truncate(16, 160);
        let mut rng = StdRng::seed_from_u64(0);
        let cold = Forecaster::builder()
            .history(3)
            .fit(&dataset, &mut rng)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let fast = Forecaster::builder()
            .history(3)
            .anneal(AnnealConfig::adaptive())
            .warm_start(WarmStart::Chained { chunk: 4 })
            .fit(&dataset, &mut rng)
            .unwrap();
        let windows: Vec<Vec<f64>> = (100..108).map(|t| history_of(&dataset, t, 3)).collect();
        let baseline = cold.forecast_batch(&windows, 7).unwrap();
        let preds = fast.forecast_batch(&windows, 7).unwrap();
        for (b, p) in baseline.iter().zip(&preds) {
            let diff = dsgl_core::metrics::rmse(b, p);
            assert!(diff < 1e-3, "fast path diverged from baseline: {diff}");
        }
        // Still deterministic for a fixed policy.
        assert_eq!(preds, fast.forecast_batch(&windows, 7).unwrap());
    }

    #[test]
    fn imputation_echoes_observations() {
        let dataset = dsgl_data::stock::generate(9).truncate(12, 150);
        let mut rng = StdRng::seed_from_u64(1);
        let f = Forecaster::builder()
            .history(3)
            .gaussian_outputs(true)
            .fit(&dataset, &mut rng)
            .unwrap();
        let hist = history_of(&dataset, 80, 3);
        let truth = dataset.series.frame(83);
        let observed: Vec<(usize, f64)> = (0..6).map(|i| (i, truth[i])).collect();
        let pred = f.impute(&hist, &observed, &mut rng).unwrap();
        for &(i, v) in &observed {
            assert!((pred[i] - v).abs() < 1e-12, "observation {i} not echoed");
        }
        assert!(pred.len() == dataset.node_count());
    }

    #[test]
    fn deploy_and_forecast_on_mesh() {
        let dataset = dsgl_data::covid::generate(10).truncate(12, 160);
        let wc = WindowConfig::one_step(3);
        let (train, _, _) = dataset.split_windows(&wc, 0.8, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let f = Forecaster::builder()
            .history(3)
            .fit(&dataset, &mut rng)
            .unwrap();
        let mapped = f
            .deploy((2, 2), PatternKind::DMesh, 0.3, &train, &mut rng)
            .unwrap();
        let hist = history_of(&dataset, 100, 3);
        let (pred, latency) = mapped.forecast(&hist, &mut rng).unwrap();
        assert_eq!(pred.len(), dataset.node_count());
        assert!(latency > 0.0);
        // Mapping is legal.
        let report = dsgl_hw::validate_mapping(mapped.decomposed(), 30);
        assert!(report.is_legal());
    }

    #[test]
    fn horizon_forecaster() {
        let dataset = dsgl_data::covid::generate(11).truncate(10, 150);
        let mut rng = StdRng::seed_from_u64(3);
        let f = Forecaster::builder()
            .history(3)
            .horizon(2)
            .fit(&dataset, &mut rng)
            .unwrap();
        let hist = history_of(&dataset, 90, 3);
        let pred = f.forecast(&hist, &mut rng).unwrap();
        assert_eq!(pred.len(), 2 * dataset.node_count());
    }

    #[test]
    fn guarded_forecast_matches_unguarded_on_healthy_hardware() {
        let dataset = dsgl_data::covid::generate(9).truncate(16, 160);
        let mut rng = StdRng::seed_from_u64(0);
        let f = Forecaster::builder()
            .history(3)
            .fit(&dataset, &mut rng)
            .unwrap();
        let hist = history_of(&dataset, 100, 3);
        let mut rng_a = StdRng::seed_from_u64(21);
        let plain = f.forecast(&hist, &mut rng_a).unwrap();
        let mut rng_b = StdRng::seed_from_u64(21);
        let (guarded, health) = f.forecast_with_health(&hist, &mut rng_b).unwrap();
        assert!(health.healthy(), "health: {health:?}");
        assert_eq!(plain, guarded, "guard must be invisible when healthy");
        // Batch variant: same bits as the cold unguarded batch, every
        // window clean.
        let windows: Vec<Vec<f64>> = (100..104).map(|t| history_of(&dataset, t, 3)).collect();
        let plain_batch = f.forecast_batch(&windows, 7).unwrap();
        let guarded_batch = f.forecast_batch_with_health(&windows, 7).unwrap();
        for ((p, (g, h)), k) in plain_batch.iter().zip(&guarded_batch).zip(0..) {
            assert!(h.healthy(), "window {k}: {h:?}");
            assert_eq!(p, g, "window {k} diverged");
        }
    }

    #[test]
    fn guard_policy_is_configurable_and_retries_a_starved_budget() {
        let dataset = dsgl_data::covid::generate(9).truncate(12, 140);
        let mut rng = StdRng::seed_from_u64(5);
        let f = Forecaster::builder()
            .history(3)
            .anneal(AnnealConfig::with_budget(20.0)) // far too small
            .guard(dsgl_core::RetryPolicy {
                max_retries: 5,
                backoff: 4.0,
            })
            .fit(&dataset, &mut rng)
            .unwrap();
        let hist = history_of(&dataset, 90, 3);
        let (pred, health) = f.forecast_with_health(&hist, &mut rng).unwrap();
        assert!(pred.iter().all(|p| p.is_finite()));
        assert!(health.retries >= 1, "starved budget must trigger retries");
        assert!(!health.degraded, "backoff should rescue the run: {health:?}");
    }

    #[test]
    fn faulted_mesh_degrades_to_historical_means() {
        let dataset = dsgl_data::covid::generate(10).truncate(12, 160);
        let wc = WindowConfig::one_step(3);
        let (train, _, _) = dataset.split_windows(&wc, 0.8, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let f = Forecaster::builder()
            .history(3)
            .fit(&dataset, &mut rng)
            .unwrap();
        let mapped = f
            .deploy((2, 2), PatternKind::DMesh, 0.3, &train, &mut rng)
            .unwrap();
        let hist = history_of(&dataset, 100, 3);
        // Clean mesh: health path returns the same bits as forecast.
        let mut rng_a = StdRng::seed_from_u64(33);
        let (clean, _) = mapped.forecast(&hist, &mut rng_a).unwrap();
        let mut rng_b = StdRng::seed_from_u64(33);
        let (pred, latency, health) = mapped.forecast_with_health(&hist, &mut rng_b).unwrap();
        assert!(health.healthy(), "clean mesh must report healthy");
        assert_eq!(clean, pred);
        assert!(latency > 0.0);
        // Kill PE 0: its target outputs fall back to historical means,
        // the report says so, and the output stays finite.
        let faulted = mapped.clone().with_faults(HwFaultModel {
            dead_pes: vec![0],
            dead_cu_lanes: vec![],
        });
        let mut rng_c = StdRng::seed_from_u64(33);
        let (dpred, _, dhealth) = faulted.forecast_with_health(&hist, &mut rng_c).unwrap();
        assert!(dhealth.degraded, "dead PE must degrade the forecast");
        assert!(dhealth.fault_clamped > 0, "health: {dhealth:?}");
        assert!(!dhealth.healthy());
        assert!(dpred.iter().all(|p| p.is_finite()));
        // Degradation is still a usable forecast, not garbage.
        let truth = dataset.series.frame(103);
        let rmse = dsgl_core::metrics::rmse(&dpred, truth);
        assert!(rmse < 0.5, "degraded forecast unusable: rmse {rmse}");
        // A fault outside the grid is rejected, not silently ignored.
        let bad = mapped.clone().with_faults(HwFaultModel {
            dead_pes: vec![99],
            dead_cu_lanes: vec![],
        });
        assert!(bad.forecast_with_health(&hist, &mut rng_c).is_err());
    }

    #[test]
    fn served_forecasts_match_the_serial_facade_reference() {
        let dataset = dsgl_data::covid::generate(9).truncate(16, 160);
        let mut rng = StdRng::seed_from_u64(0);
        let f = Forecaster::builder()
            .history(3)
            .telemetry(dsgl_core::TelemetrySink::enabled())
            .fit(&dataset, &mut rng)
            .unwrap();
        let windows: Vec<Vec<f64>> = (100..106).map(|t| history_of(&dataset, t, 3)).collect();
        let seeds: Vec<u64> = (0..windows.len() as u64).map(|i| 50 + i).collect();
        // Serial reference: each request alone through the facade's
        // guarded batch under its own master seed.
        let reference: Vec<(Vec<f64>, HealthReport)> = windows
            .iter()
            .zip(&seeds)
            .map(|(w, &seed)| {
                f.forecast_batch_with_health(std::slice::from_ref(w), seed)
                    .unwrap()
                    .remove(0)
            })
            .collect();
        let mut service = f
            .serve(dsgl_serve::ServeConfig::default().workers(2).coalesce(4))
            .unwrap();
        let tickets: Vec<_> = windows
            .iter()
            .zip(&seeds)
            .map(|(w, &seed)| service.submit(w.clone(), seed).unwrap())
            .collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let response = ticket.wait().unwrap();
            assert_eq!(response.prediction, reference[i].0, "window {i}");
            assert_eq!(response.health, reference[i].1, "window {i}");
        }
        service.shutdown();
        // The service records into the forecaster's registry.
        let snapshot = f.telemetry_snapshot();
        assert!(snapshot.families().contains(&"serve".to_owned()));
        assert_eq!(
            snapshot.counter(dsgl_serve::instruments::REQUESTS),
            windows.len() as u64
        );
    }

    #[test]
    fn wrong_history_length_rejected() {
        let dataset = dsgl_data::covid::generate(12).truncate(8, 120);
        let mut rng = StdRng::seed_from_u64(4);
        let f = Forecaster::builder()
            .history(3)
            .fit(&dataset, &mut rng)
            .unwrap();
        assert!(f.forecast(&[0.0; 5], &mut rng).is_err());
    }
}
